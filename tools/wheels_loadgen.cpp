// wheels_loadgen: replayable load generator for wheels_served.
//
// Drives the daemon through a seeded, scripted schedule in three phases --
// cold (one miss, one simulation), herd (N clients hammer one cold
// fingerprint; single-flight must simulate exactly once and every client
// must receive byte-identical response frames), hot (a warm-cache request
// mix measured for qps and p50/p99 latency) -- and emits the
// BENCH_serve.json summary. With --probe it first sends every class of
// malformed frame and verifies the typed error responses. Exit 0 only if
// all phase assertions hold, so CI can use it as the serve smoke check.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "core/rng.h"
#include "core/stats.h"
#include "obs/clock.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace {

using namespace wheels;

int usage(std::ostream& os, int code) {
  os << "usage: wheels_loadgen --socket PATH [options]\n"
        "\n"
        "options:\n"
        "  --socket PATH    daemon AF_UNIX socket to drive\n"
        "  --scenario S     scenario the queries select (default urban-loop)\n"
        "  --stride N       dataset cycle stride (default 64)\n"
        "  --seed N         base dataset seed; cold uses N, herd N+1\n"
        "                   (default 42)\n"
        "  --clients N      concurrent clients for herd + hot (default 8)\n"
        "  --requests M     hot-phase requests per client (default 25)\n"
        "  --schedule-seed N  seed of the scripted request mix (default 7)\n"
        "  --out PATH       write the JSON summary there (default stdout)\n"
        "  --probe          malformed-frame probes before the phases\n"
        "  --shutdown       send Shutdown once done\n";
  return code;
}

long parse_long_or_exit(const std::string& text, const char* opt) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || v < 0) {
    std::cerr << "wheels_loadgen: invalid value '" << text << "' for " << opt
              << "\n";
    std::exit(2);
  }
  return v;
}

struct Options {
  std::string socket_path;
  std::string scenario = "urban-loop";
  std::uint32_t stride = 64;
  std::uint64_t seed = 42;
  int clients = 8;
  int requests = 25;
  std::uint64_t schedule_seed = 7;
  std::string out_path;
  bool probe = false;
  bool shutdown = false;
};

serve::DatasetSelector selector(const Options& o, std::uint64_t seed) {
  serve::DatasetSelector sel;
  sel.scenario = o.scenario;
  sel.has_seed = true;
  sel.seed = seed;
  sel.stride = o.stride;
  return sel;
}

serve::KpiQuery kpi_query(const Options& o, std::uint64_t seed,
                          std::uint8_t test) {
  serve::KpiQuery q;
  q.dataset = selector(o, seed);
  q.op = 0;
  q.test = test;
  return q;
}

bool fetch_stats(const Options& o, serve::StatsReply& out) {
  serve::Client c;
  if (!c.connect(o.socket_path)) return false;
  const auto reply = c.call(serve::Request{serve::StatsRequest{}});
  if (!reply || !std::holds_alternative<serve::StatsReply>(reply->second))
    return false;
  out = std::get<serve::StatsReply>(reply->second);
  return true;
}

int failures = 0;

void check(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "[loadgen] FAIL: %s\n", what);
}

// ---- Probe phase -----------------------------------------------------------

bool expect_error(serve::Client& c, serve::ErrorCode want, const char* what) {
  const auto reply = c.read_reply();
  if (!reply || !std::holds_alternative<serve::ErrorReply>(reply->second)) {
    std::fprintf(stderr, "[loadgen] probe '%s': no error reply\n", what);
    return false;
  }
  const auto& err = std::get<serve::ErrorReply>(reply->second);
  if (err.code != want) {
    std::fprintf(stderr, "[loadgen] probe '%s': got %s\n", what,
                 serve::to_string(err.code));
    return false;
  }
  return true;
}

bool run_probes(const Options& o) {
  bool ok = true;
  {
    serve::Client c;
    ok = ok && c.connect(o.socket_path);
    std::string frame = "XWSV";
    frame.append(4, '\0');
    ok = ok && c.send_raw(frame) &&
         expect_error(c, serve::ErrorCode::BadMagic, "bad magic");
  }
  {
    serve::Client c;
    ok = ok && c.connect(o.socket_path);
    std::string frame = "WSV1";
    frame.append(4, '\xff');  // body length 0xffffffff
    ok = ok && c.send_raw(frame) &&
         expect_error(c, serve::ErrorCode::Oversize, "oversize");
  }
  {
    serve::Client c;
    ok = ok && c.connect(o.socket_path);
    // Header promises 16 body bytes; deliver 3 and half-close.
    std::string frame = "WSV1";
    frame += '\x10';
    frame.append(3, '\0');
    frame.append(3, '\x01');
    if (ok && c.send_raw(frame)) {
      c.shutdown_writes();
      ok = expect_error(c, serve::ErrorCode::Truncated, "truncated");
    } else {
      ok = false;
    }
  }
  {
    serve::Client c;
    ok = ok && c.connect(o.socket_path);
    const std::string body(1, '\x63');  // tag 99: no such query kind
    ok = ok && c.send_raw(serve::wrap_frame(body)) &&
         expect_error(c, serve::ErrorCode::UnknownKind, "unknown kind");
  }
  {
    // Truncated payload within a well-formed frame: kpi tag, no selector.
    serve::Client c;
    ok = ok && c.connect(o.socket_path);
    const std::string body(1, '\x02');
    ok = ok && c.send_raw(serve::wrap_frame(body)) &&
         expect_error(c, serve::ErrorCode::BadPayload, "bad payload");
  }
  return ok;
}

// ---- Herd phase ------------------------------------------------------------

struct HerdResult {
  double wall_ms = 0.0;
  bool byte_identical = false;
  int answered = 0;
};

HerdResult run_herd(const Options& o) {
  HerdResult res;
  const serve::Request req{kpi_query(o, o.seed + 1, 0)};
  std::vector<serve::Client> clients(static_cast<std::size_t>(o.clients));
  for (auto& c : clients) {
    if (!c.connect(o.socket_path)) {
      check(false, "herd client connect");
      return res;
    }
  }
  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;
  std::vector<std::string> responses(clients.size());
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  const std::int64_t t0 = obs::now_ns();
  for (std::size_t i = 0; i < clients.size(); ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(mu);
        ++ready;
        cv.notify_all();
        cv.wait(lock, [&] { return go; });
      }
      const auto reply = clients[i].call(req);
      if (reply) responses[i] = clients[i].last_reply_bytes();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready == o.clients; });
    go = true;
    cv.notify_all();
  }
  for (auto& t : threads) t.join();
  res.wall_ms =
      static_cast<double>(obs::now_ns() - t0) / 1e6;
  res.byte_identical = true;
  for (const std::string& r : responses) {
    if (!r.empty()) ++res.answered;
    if (r != responses[0]) res.byte_identical = false;
  }
  if (responses[0].empty()) res.byte_identical = false;
  return res;
}

// ---- Hot phase -------------------------------------------------------------

struct HotResult {
  int requests = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

HotResult run_hot(const Options& o) {
  HotResult res;
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(o.clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(o.clients));
  std::atomic<int> errors{0};
  const std::int64_t t0 = obs::now_ns();
  for (int i = 0; i < o.clients; ++i) {
    threads.emplace_back([&, i] {
      // One deterministic schedule per client: the run is replayable from
      // (schedule seed, client index) alone.
      Rng rng = Rng(o.schedule_seed).fork(static_cast<std::uint64_t>(i));
      serve::Client c;
      if (!c.connect(o.socket_path)) {
        errors.fetch_add(1);
        return;
      }
      for (int k = 0; k < o.requests; ++k) {
        const std::uint64_t seed =
            o.seed + (rng.uniform() < 0.5 ? 0 : 1);
        const std::uint64_t pick = rng.uniform_index(5);
        serve::Request req{serve::PingRequest{}};
        if (pick < 3) {
          req = kpi_query(o, seed, static_cast<std::uint8_t>(pick));
        } else if (pick == 3) {
          serve::RegionSliceQuery q;
          q.dataset = selector(o, seed);
          q.test = 0;
          req = q;
        } else {
          req = serve::PingRequest{k * 1000ull + static_cast<unsigned>(i)};
        }
        const std::int64_t q0 = obs::now_ns();
        const auto reply = c.call(req);
        const std::int64_t q1 = obs::now_ns();
        if (!reply || std::holds_alternative<serve::ErrorReply>(reply->second))
          errors.fetch_add(1);
        latencies[static_cast<std::size_t>(i)].push_back(
            static_cast<double>(q1 - q0) / 1e6);
      }
    });
  }
  for (auto& t : threads) t.join();
  res.wall_ms = static_cast<double>(obs::now_ns() - t0) / 1e6;
  std::vector<double> all;
  for (const auto& per_client : latencies)
    all.insert(all.end(), per_client.begin(), per_client.end());
  std::sort(all.begin(), all.end());
  res.requests = static_cast<int>(all.size());
  if (!all.empty() && res.wall_ms > 0.0) {
    res.qps = static_cast<double>(all.size()) / (res.wall_ms / 1e3);
    res.p50_ms = percentile(all, 50.0);
    res.p99_ms = percentile(all, 99.0);
  }
  check(errors.load() == 0, "hot phase requests all answered");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "wheels_loadgen: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") return usage(std::cout, 0);
    if (arg == "--socket") {
      o.socket_path = value();
    } else if (arg == "--scenario") {
      o.scenario = value();
    } else if (arg == "--stride") {
      o.stride =
          static_cast<std::uint32_t>(parse_long_or_exit(value(), "--stride"));
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(parse_long_or_exit(value(), "--seed"));
    } else if (arg == "--clients") {
      o.clients = static_cast<int>(parse_long_or_exit(value(), "--clients"));
    } else if (arg == "--requests") {
      o.requests = static_cast<int>(parse_long_or_exit(value(), "--requests"));
    } else if (arg == "--schedule-seed") {
      o.schedule_seed = static_cast<std::uint64_t>(
          parse_long_or_exit(value(), "--schedule-seed"));
    } else if (arg == "--out") {
      o.out_path = value();
    } else if (arg == "--probe") {
      o.probe = true;
    } else if (arg == "--shutdown") {
      o.shutdown = true;
    } else {
      std::cerr << "wheels_loadgen: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (o.socket_path.empty()) {
    std::cerr << "wheels_loadgen: need --socket PATH\n";
    return usage(std::cerr, 2);
  }
  if (o.clients < 1 || o.stride == 0) {
    std::cerr << "wheels_loadgen: need --clients >= 1 and --stride >= 1\n";
    return 2;
  }

  bool probes_ok = true;
  if (o.probe) {
    probes_ok = run_probes(o);
    check(probes_ok, "malformed-frame probes");
  }

  // Cold phase: one client, one miss (a simulation unless the daemon's
  // disk cache is already warm for this selector).
  serve::StatsReply before;
  check(fetch_stats(o, before), "stats before");
  double cold_ms = 0.0;
  {
    serve::Client c;
    check(c.connect(o.socket_path), "cold client connect");
    const std::int64_t t0 = obs::now_ns();
    const auto reply = c.call(serve::Request{kpi_query(o, o.seed, 0)});
    cold_ms = static_cast<double>(obs::now_ns() - t0) / 1e6;
    check(reply.has_value() &&
              std::holds_alternative<serve::KpiReply>(reply->second),
          "cold query answered");
  }
  serve::StatsReply after_cold;
  check(fetch_stats(o, after_cold), "stats after cold");

  // Herd phase: every client asks for one cold fingerprint at once.
  const HerdResult herd = run_herd(o);
  serve::StatsReply after_herd;
  check(fetch_stats(o, after_herd), "stats after herd");
  const std::uint64_t herd_sims =
      after_herd.campaign_simulations - after_cold.campaign_simulations;
  const std::uint64_t herd_joins =
      after_herd.inflight_joins - after_cold.inflight_joins;
  check(herd.answered == o.clients, "herd: every client answered");
  check(herd.byte_identical, "herd: responses byte-identical");
  const bool herd_cold = after_herd.disk_hits == after_cold.disk_hits;
  if (herd_cold) {
    check(herd_sims == 1, "herd: exactly one simulation");
    if (o.clients >= 2)
      check(herd_joins >= static_cast<std::uint64_t>(o.clients - 1),
            "herd: waiters joined the flight");
  }

  // Hot phase: warm-cache mixed schedule.
  const HotResult hot = run_hot(o);
  serve::StatsReply final_stats;
  check(fetch_stats(o, final_stats), "stats final");

  if (o.shutdown) {
    serve::Client c;
    if (c.connect(o.socket_path)) {
      const auto reply = c.call(serve::Request{serve::ShutdownRequest{}});
      check(reply.has_value() &&
                std::holds_alternative<serve::ShutdownReply>(reply->second),
            "shutdown acknowledged");
    } else {
      check(false, "shutdown connect");
    }
  }

  const double hit_ratio =
      final_stats.store_hits + final_stats.store_misses > 0
          ? static_cast<double>(final_stats.store_hits) /
                static_cast<double>(final_stats.store_hits +
                                    final_stats.store_misses)
          : 0.0;

  std::FILE* out = stdout;
  if (!o.out_path.empty()) {
    out = std::fopen(o.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "wheels_loadgen: cannot write %s\n",
                   o.out_path.c_str());
      return 1;
    }
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serve\",\n");
  std::fprintf(out, "  \"scenario\": \"%s\",\n", o.scenario.c_str());
  std::fprintf(out, "  \"stride\": %u,\n", o.stride);
  std::fprintf(out, "  \"clients\": %d,\n", o.clients);
  std::fprintf(out, "  \"requests_per_client\": %d,\n", o.requests);
  std::fprintf(out, "  \"schedule_seed\": %llu,\n",
               static_cast<unsigned long long>(o.schedule_seed));
  std::fprintf(out, "  \"probes\": \"%s\",\n",
               o.probe ? (probes_ok ? "ok" : "failed") : "skipped");
  std::fprintf(out, "  \"cold\": {\"latency_ms\": %.3f, \"simulations\": %llu},\n",
               cold_ms,
               static_cast<unsigned long long>(
                   after_cold.campaign_simulations -
                   before.campaign_simulations));
  std::fprintf(out,
               "  \"herd\": {\"clients\": %d, \"wall_ms\": %.3f, "
               "\"simulations\": %llu, \"inflight_joins\": %llu, "
               "\"byte_identical\": %s},\n",
               o.clients, herd.wall_ms,
               static_cast<unsigned long long>(herd_sims),
               static_cast<unsigned long long>(herd_joins),
               herd.byte_identical ? "true" : "false");
  std::fprintf(out,
               "  \"hot\": {\"requests\": %d, \"wall_ms\": %.3f, "
               "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f},\n",
               hot.requests, hot.wall_ms, hot.qps, hot.p50_ms, hot.p99_ms);
  std::fprintf(out,
               "  \"store\": {\"hits\": %llu, \"misses\": %llu, "
               "\"evictions\": %llu, \"hit_ratio\": %.4f},\n",
               static_cast<unsigned long long>(final_stats.store_hits),
               static_cast<unsigned long long>(final_stats.store_misses),
               static_cast<unsigned long long>(final_stats.store_evictions),
               hit_ratio);
  std::fprintf(out, "  \"failures\": %d\n", failures);
  std::fprintf(out, "}\n");
  if (out != stdout) std::fclose(out);

  return failures == 0 ? 0 : 1;
}
