#!/usr/bin/env python3
"""wheels-contract: cross-artifact determinism-pin contract analyzer.

The repo's core guarantee is bit-level determinism: the seed-42 stride-64
campaign hits one golden FNV checksum, datasets carry one magic/schema
pair, the `WHEELS_*` env surface is documented, and the obs span names CI
validates are the ones the code emits. Those pins used to live as loose
literals scattered across tests, tools, benches, docs and the CI driver —
exactly the drift surface that rots silently when a schema or golden is
deliberately bumped. This tool makes tools/contracts.json the single
source of truth and cross-checks every artifact against it, compile-free,
in the style of wheels_lint.py / wheels_arch.py:

  registry            tools/contracts.json itself is malformed: missing
                      keys, no golden for the current schema version,
                      bad checksum syntax, duplicate env var names.
  schema-pin          src/dataset/serialize.h kSchemaVersion / kMagic
                      disagree with the registry.
  golden-pin          a golden-checksum literal (tests/, bench/, or a
                      16-hex-digit literal in README/DESIGN/EXPERIMENTS)
                      differs from the registry's checksum for the
                      current schema version.
  pins-stale          the generated tests/contract_pins.h is missing or
                      out of sync with the registry (--fix-pins
                      regenerates it).
  env-undeclared      getenv/setenv of a WHEELS_* variable in C++, or a
                      WHEELS_* reference in the CI driver, that the
                      registry does not declare.
  env-unused          a declared env var with no consumer in the artifact
                      its kind names (runtime -> C++ getenv/setenv,
                      ci -> tools/run_static_analysis.sh,
                      cmake -> CMakeLists/CMakePresets/cmake/*.cmake).
  doc-drift           a generated README table (determinism pins, env
                      vars, CI gates) is missing or differs from the
                      registry render (--fix-docs regenerates them).
  cli-flag            wheels_campaign's parsed subcommands/flags and the
                      registry's cli section disagree (either direction).
  span-prefix         a registry metric/span prefix with no matching
                      string literal in src/, or a metric registered in
                      src/ whose name starts with no declared prefix.
  ci-stage            a registry CI stage whose toggle is missing from
                      the driver, whose --quick membership disagrees
                      with the driver's QUICK guard, or a driver toggle
                      the registry does not list.
  ctest-registration  a tests/test_*.{cpp,py} file that is not wired
                      into tests/CMakeLists.txt (a test that never runs
                      is a pin that never pins).
  scenario-registry   a scenarios/*.json library file that does not
                      parse, names a scenario twice, disagrees with its
                      filename, or is missing from the README scenario
                      table (--fix-docs regenerates the table).

Usage:
  tools/wheels_contract.py [--root DIR] [--format text|json|sarif]
                           [--fix-docs] [--fix-pins] [--list-rules]

With --format=json, stdout carries the same single-object schema as the
other tools ({"tool", "files_scanned", "findings": [{rule, path, line,
message}]}); --format=sarif emits SARIF 2.1.0 via tools/sarif.py.

Exits 0 when clean, 1 when any finding fires, 2 on usage/registry-read
errors. --fix-docs / --fix-pins rewrite the derived artifacts from the
registry and exit 0.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sarif  # noqa: E402  (sibling module, shared with the other tools)

REGISTRY_REL = "tools/contracts.json"
SCENARIOS_DIR_REL = "scenarios"
SERIALIZE_REL = "src/dataset/serialize.h"
DRIVER_REL = "tools/run_static_analysis.sh"
TESTS_DIR_REL = "tests"
TESTS_CMAKE_REL = "tests/CMakeLists.txt"
README_REL = "README.md"
DOC_SCAN = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

CPP_SCAN_DIRS = ("src", "tools", "bench", "examples", "tests")
CPP_EXTENSIONS = (".cpp", ".h", ".hpp", ".cc")
# Fixture miniature repos are independent trees checked by their own
# tests; never mix their pins into the real cross-check.
SKIP_DIR_PARTS = ("lint_fixtures", "fixtures")

# No \b: a C++ suffix (0x...ULL) would suppress the boundary. Any run of
# exactly 16 hex digits counts; the lookahead rejects longer literals.
HEX64_RE = re.compile(r"0[xX][0-9a-fA-F]{16}(?![0-9a-fA-F])")
ENV_CALL_RE = re.compile(r"\b(?:getenv|setenv)\s*\(\s*\"(WHEELS_[A-Z0-9_]+)\"")
SHELL_ENV_RE = re.compile(r"\b(WHEELS_[A-Z0-9_]+)\b")
TOGGLE_RE = re.compile(r"\$\{(WHEELS_CI_[A-Z0-9_]+):-1\}")
METRIC_REG_RE = re.compile(
    r"\.(?:counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"", re.S)
SCHEMA_RE = re.compile(r"\bkSchemaVersion\s*=\s*(\d+)")
MAGIC_RE = re.compile(r"\bkMagic\s*=\s*\"([^\"]*)\"")
CLI_SUBCOMMAND_RE = re.compile(r"command\s*==\s*\"([a-z][a-z0-9-]*)\"")
CLI_FLAG_RE = re.compile(r"\barg\s*==\s*\"(-{1,2}[a-z][a-z-]*|-h)\"")
GOLDEN_CONTEXT_RE = re.compile(r"[Gg]olden")

RULES = {
    "registry":
        "tools/contracts.json is malformed or internally inconsistent",
    "schema-pin":
        "src/dataset/serialize.h schema version / magic disagree with the "
        "registry",
    "golden-pin":
        "a golden checksum literal (code or docs) differs from the registry",
    "pins-stale":
        "generated tests/contract_pins.h missing or out of sync "
        "(--fix-pins)",
    "env-undeclared":
        "WHEELS_* env var used in code/CI but not declared in the registry",
    "env-unused":
        "declared env var with no consumer in the artifact its kind names",
    "doc-drift":
        "generated README table missing or out of sync (--fix-docs)",
    "cli-flag":
        "wheels_campaign subcommands/flags disagree with the registry",
    "span-prefix":
        "metric/span name prefixes and src/ literals disagree",
    "ci-stage":
        "CI driver stages/toggles disagree with the registry",
    "ctest-registration":
        "tests/test_* file not registered in tests/CMakeLists.txt",
    "scenario-registry":
        "scenarios/*.json fails to parse, duplicates a name, or is "
        "missing from the README scenario table",
}


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- small IO helpers --------------------------------------------------------


def read_text(root: str, relpath: str) -> str | None:
    try:
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            return f.read()
    except OSError:
        return None


def gather_cpp_files(root: str) -> list[str]:
    files = []
    for scan in CPP_SCAN_DIRS:
        base = os.path.join(root, scan)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [
                d for d in dirnames
                if d not in SKIP_DIR_PARTS and not d.startswith("build")
            ]
            for name in filenames:
                if name.endswith(CPP_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    files.append(
                        os.path.relpath(full, root).replace(os.sep, "/"))
    return sorted(files)


def registry_line(registry_text: str, needle: str) -> int:
    """Line of the first occurrence of `needle` in the raw registry text,
    so registry-side findings point at the offending entry."""
    pos = registry_text.find(needle)
    if pos == -1:
        return 1
    return registry_text.count("\n", 0, pos) + 1


# --- registry ----------------------------------------------------------------


CHECKSUM_RE = re.compile(r"^0x[0-9a-f]{16}$")
ENV_KINDS = ("runtime", "ci", "cmake")


def check_registry(reg: dict, reg_rel: str, reg_text: str) -> list[Finding]:
    findings = []

    def bad(needle: str, msg: str) -> None:
        findings.append(
            Finding(reg_rel, registry_line(reg_text, needle), "registry", msg))

    version = reg.get("schema_version")
    if not isinstance(version, int):
        bad("schema_version", "schema_version must be an integer")
    if not isinstance(reg.get("dataset_magic"), str) or \
            not reg.get("dataset_magic"):
        bad("dataset_magic", "dataset_magic must be a non-empty string")
    goldens = reg.get("golden_checksums")
    if not isinstance(goldens, dict):
        bad("golden_checksums", "golden_checksums must be an object keyed "
            "by schema version")
        goldens = {}
    if isinstance(version, int) and str(version) not in goldens:
        bad("golden_checksums",
            f"no golden checksum registered for the current schema version "
            f"{version}; a schema bump must re-pin the golden in the same "
            "edit")
    for ver, entry in sorted(goldens.items()):
        checksum = entry.get("checksum") if isinstance(entry, dict) else None
        if not isinstance(checksum, str) or not CHECKSUM_RE.match(checksum):
            bad(f'"{ver}"',
                f"golden for schema version {ver} needs a checksum of the "
                "form 0x<16 lowercase hex digits>")
    seen: set[str] = set()
    for var in reg.get("env_vars", []):
        name = var.get("name", "") if isinstance(var, dict) else ""
        if not name.startswith("WHEELS_"):
            bad("env_vars", f"env var {name!r} must start with WHEELS_")
            continue
        if name in seen:
            bad(f'"name": "{name}"', f"env var {name} declared twice")
        seen.add(name)
        if var.get("kind") not in ENV_KINDS:
            bad(f'"name": "{name}"',
                f"env var {name} has kind {var.get('kind')!r}; expected one "
                f"of {', '.join(ENV_KINDS)}")
    return findings


def current_golden(reg: dict) -> dict | None:
    entry = reg.get("golden_checksums", {}).get(str(reg.get("schema_version")))
    return entry if isinstance(entry, dict) else None


# --- generated artifacts: pins header + README tables ------------------------


def render_pins_header(reg: dict) -> str:
    golden = current_golden(reg) or {}
    checksum = golden.get("checksum", "0x0")
    return f"""\
// GENERATED FILE -- do not edit by hand.
//
// Single-source determinism pins, rendered from tools/contracts.json by
// `tools/wheels_contract.py --fix-pins`. The wheels-contract analyzer
// (pins-stale rule) fails CI whenever this header and the registry
// disagree, so a deliberate golden/schema bump is a one-line registry
// edit plus a regeneration -- never a hunt for scattered literals.
#pragma once

#include <cstdint>
#include <string_view>

namespace wheels::contract {{

// Dataset container format (src/dataset/serialize.h must agree; the
// schema-pin rule cross-checks).
inline constexpr std::uint32_t kSchemaVersion = {reg.get("schema_version")};
inline constexpr std::string_view kDatasetMagic = "{reg.get("dataset_magic")}";

// The golden campaign: FNV-1a checksum of encode(CampaignResult) for
// this seed/stride pair, pinning every stochastic process in the
// pipeline. Regenerate deliberately via the registry, never by editing
// this file.
inline constexpr std::uint64_t kGoldenSeed = {golden.get("seed", 0)};
inline constexpr int kGoldenStride = {golden.get("stride", 0)};
inline constexpr std::uint64_t kGoldenCampaignChecksum =
    {checksum}ULL;

}}  // namespace wheels::contract
"""


def table_marker(name: str, which: str) -> str:
    return f"<!-- contract:{name}:{which} -->"


def render_pins_table(reg: dict, root: str) -> list[str]:
    golden = current_golden(reg) or {}
    return [
        "| Pin | Value |",
        "|---|---|",
        f"| dataset magic | `{reg.get('dataset_magic')}` |",
        f"| dataset schema version | `{reg.get('schema_version')}` |",
        f"| golden campaign checksum (seed {golden.get('seed')}, "
        f"stride {golden.get('stride')}) | `{golden.get('checksum')}` |",
    ]


def render_env_table(reg: dict, root: str) -> list[str]:
    lines = ["| Variable | Effect |", "|---|---|"]
    for var in reg.get("env_vars", []):
        if var.get("kind") != "runtime":
            continue
        lines.append(f"| `{var.get('usage', var['name'])}` | {var['doc']} |")
    return lines


def render_gates_table(reg: dict, root: str) -> list[str]:
    lines = ["| Stage | Toggle | In `--quick` |", "|---|---|---|"]
    for stage in reg.get("ci_stages", []):
        quick = "yes" if stage.get("quick") else "no"
        lines.append(
            f"| {stage['name']} | `{stage['toggle']}=0` | {quick} |")
    return lines


def scenario_docs(root: str) -> list[tuple[str, dict | None]]:
    """(relpath, parsed-object-or-None) per scenarios/*.json, sorted by
    filename; None marks a file that is not a JSON object."""
    base = os.path.join(root, SCENARIOS_DIR_REL)
    if not os.path.isdir(base):
        return []
    out: list[tuple[str, dict | None]] = []
    for name in sorted(os.listdir(base)):
        if not name.endswith(".json"):
            continue
        relpath = f"{SCENARIOS_DIR_REL}/{name}"
        try:
            doc = json.loads(read_text(root, relpath) or "")
        except json.JSONDecodeError:
            doc = None
        out.append((relpath, doc if isinstance(doc, dict) else None))
    return out


def render_scenario_table(reg: dict, root: str) -> list[str]:
    lines = ["| Scenario | File | Description |", "|---|---|---|"]
    for relpath, doc in scenario_docs(root):
        if doc is None:
            continue  # the scenario-registry rule reports the parse failure
        name = doc.get("name", "")
        desc = " ".join(str(doc.get("description", "")).split())
        lines.append(f"| `{name}` | `{relpath}` | {desc} |")
    return lines


TABLE_RENDERERS = {
    "contract-pins-table": render_pins_table,
    "contract-env-table": render_env_table,
    "contract-gates-table": render_gates_table,
    "contract-scenario-table": render_scenario_table,
}


def check_pins_stale(root: str, reg: dict) -> list[Finding]:
    pins_rel = reg.get("generated", {}).get("pins_header")
    if not pins_rel:
        return []
    expected = render_pins_header(reg)
    actual = read_text(root, pins_rel)
    if actual is None:
        return [
            Finding(
                pins_rel, 1, "pins-stale",
                "generated pins header is missing; run "
                "tools/wheels_contract.py --fix-pins")
        ]
    if actual != expected:
        return [
            Finding(
                pins_rel, 1, "pins-stale",
                "generated pins header does not match tools/contracts.json; "
                "run tools/wheels_contract.py --fix-pins (never edit the "
                "header by hand)")
        ]
    return []


def check_doc_tables(root: str, reg: dict) -> list[Finding]:
    tables = reg.get("generated", {}).get("readme_tables", [])
    if not tables:
        return []
    text = read_text(root, README_REL)
    if text is None:
        return [
            Finding(README_REL, 1, "doc-drift",
                    "README.md is missing but the registry declares "
                    "generated tables for it")
        ]
    findings = []
    lines = text.splitlines()
    for name in tables:
        begin, end = table_marker(name, "begin"), table_marker(name, "end")
        try:
            b = lines.index(begin)
            e = lines.index(end)
        except ValueError:
            findings.append(
                Finding(
                    README_REL, 1, "doc-drift",
                    f"README.md lacks the generated table markers for "
                    f"{name} ({begin} ... {end}); run "
                    "tools/wheels_contract.py --fix-docs"))
            continue
        actual = [ln for ln in lines[b + 1:e] if ln.strip()]
        expected = TABLE_RENDERERS[name](reg, root)
        if actual != expected:
            findings.append(
                Finding(
                    README_REL, b + 1, "doc-drift",
                    f"generated table {name} is out of sync with "
                    "tools/contracts.json; run tools/wheels_contract.py "
                    "--fix-docs (edit the registry, not the table)"))
    return findings


def fix_docs(root: str, reg: dict) -> list[str]:
    """Rewrite every registered generated table between its markers.
    Returns the names actually rewritten; missing marker pairs are left
    for the caller to report."""
    tables = reg.get("generated", {}).get("readme_tables", [])
    text = read_text(root, README_REL)
    if text is None or not tables:
        return []
    lines = text.splitlines()
    fixed = []
    for name in tables:
        begin, end = table_marker(name, "begin"), table_marker(name, "end")
        try:
            b = lines.index(begin)
            e = lines.index(end)
        except ValueError:
            continue
        lines[b + 1:e] = TABLE_RENDERERS[name](reg, root)
        fixed.append(name)
    with open(os.path.join(root, README_REL), "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    return fixed


# --- pin checks over code and docs -------------------------------------------


def check_schema_pin(root: str, reg: dict) -> list[Finding]:
    text = read_text(root, SERIALIZE_REL)
    if text is None:
        return []
    findings = []
    m = SCHEMA_RE.search(text)
    if m and int(m.group(1)) != reg.get("schema_version"):
        findings.append(
            Finding(
                SERIALIZE_REL, text.count("\n", 0, m.start()) + 1,
                "schema-pin",
                f"kSchemaVersion = {m.group(1)} but tools/contracts.json "
                f"pins schema_version {reg.get('schema_version')}; bump the "
                "registry (and its golden) in the same change"))
    m = MAGIC_RE.search(text)
    if m and m.group(1) != reg.get("dataset_magic"):
        findings.append(
            Finding(
                SERIALIZE_REL, text.count("\n", 0, m.start()) + 1,
                "schema-pin",
                f'kMagic = "{m.group(1)}" but tools/contracts.json pins '
                f'dataset_magic "{reg.get("dataset_magic")}"'))
    return findings


def check_golden_pin(root: str, reg: dict,
                     cpp_files: list[str]) -> list[Finding]:
    golden = current_golden(reg)
    if golden is None:
        return []
    pin = golden.get("checksum", "")
    findings = []
    # Code: any line in tests/ or bench/ that names a golden and carries a
    # 64-bit hex literal must carry *the* golden. (After the contract_pins
    # refactor the only such line is the generated header itself.)
    for relpath in cpp_files:
        if not relpath.startswith(("tests/", "bench/")):
            continue
        text = read_text(root, relpath) or ""
        for idx, line in enumerate(text.splitlines(), start=1):
            if not GOLDEN_CONTEXT_RE.search(line):
                continue
            for m in HEX64_RE.finditer(line):
                if m.group(0).lower() != pin:
                    findings.append(
                        Finding(
                            relpath, idx, "golden-pin",
                            f"golden checksum literal {m.group(0)} differs "
                            f"from the registry pin {pin} for schema "
                            f"version {reg.get('schema_version')}; read it "
                            "from tests/contract_pins.h instead of "
                            "re-spelling the literal"))
    # Docs: every 64-bit hex literal in the living documents is, by
    # convention, the golden; history files (ROADMAP/CHANGES/ISSUE) are
    # deliberately out of scope.
    for doc in DOC_SCAN:
        text = read_text(root, doc)
        if text is None:
            continue
        for idx, line in enumerate(text.splitlines(), start=1):
            for m in HEX64_RE.finditer(line):
                if m.group(0).lower() != pin:
                    findings.append(
                        Finding(
                            doc, idx, "golden-pin",
                            f"documented checksum {m.group(0)} differs from "
                            f"the registry pin {pin}; regenerate the doc "
                            "tables (--fix-docs) or fix the registry"))
    return findings


# --- env-var surface ---------------------------------------------------------


def check_env(root: str, reg: dict, reg_text: str,
              cpp_files: list[str]) -> list[Finding]:
    declared = {
        v["name"]: v
        for v in reg.get("env_vars", [])
        if isinstance(v, dict) and "name" in v
    }
    findings = []
    cpp_uses: set[str] = set()
    for relpath in cpp_files:
        text = read_text(root, relpath) or ""
        for idx, line in enumerate(text.splitlines(), start=1):
            for m in ENV_CALL_RE.finditer(line):
                cpp_uses.add(m.group(1))
                if m.group(1) not in declared:
                    findings.append(
                        Finding(
                            relpath, idx, "env-undeclared",
                            f"{m.group(1)} is read here but not declared in "
                            "tools/contracts.json; every WHEELS_* knob must "
                            "be registered (and documented) before use"))
    driver_text = read_text(root, DRIVER_REL)
    driver_uses: set[str] = set()
    if driver_text is not None:
        for idx, line in enumerate(driver_text.splitlines(), start=1):
            for m in SHELL_ENV_RE.finditer(line):
                driver_uses.add(m.group(1))
                if m.group(1) not in declared:
                    findings.append(
                        Finding(
                            DRIVER_REL, idx, "env-undeclared",
                            f"{m.group(1)} appears in the CI driver but is "
                            "not declared in tools/contracts.json"))
    cmake_text = ""
    for rel in ("CMakeLists.txt", "CMakePresets.json"):
        cmake_text += read_text(root, rel) or ""
    cmake_dir = os.path.join(root, "cmake")
    if os.path.isdir(cmake_dir):
        for name in sorted(os.listdir(cmake_dir)):
            if name.endswith(".cmake"):
                cmake_text += read_text(root, f"cmake/{name}") or ""

    for name, var in sorted(declared.items()):
        kind = var.get("kind")
        line = registry_line(reg_text, f'"name": "{name}"')
        if kind == "runtime" and name not in cpp_uses:
            findings.append(
                Finding(
                    REGISTRY_REL, line, "env-unused",
                    f"runtime env var {name} is declared but no C++ source "
                    "reads it (getenv/setenv); delete the entry or wire the "
                    "knob up"))
        elif kind == "ci" and driver_text is not None and \
                name not in driver_uses:
            findings.append(
                Finding(
                    REGISTRY_REL, line, "env-unused",
                    f"ci env var {name} is declared but "
                    f"{DRIVER_REL} never references it"))
        elif kind == "cmake" and cmake_text and name not in cmake_text:
            findings.append(
                Finding(
                    REGISTRY_REL, line, "env-unused",
                    f"cmake option {name} is declared but no CMake file "
                    "references it"))
    return findings


# --- CLI flag surface --------------------------------------------------------


def check_cli(root: str, reg: dict, reg_text: str) -> list[Finding]:
    cli = reg.get("cli")
    if not isinstance(cli, dict):
        return []
    source_rel = cli.get("source", "")
    text = read_text(root, source_rel)
    if text is None:
        return [
            Finding(
                REGISTRY_REL, registry_line(reg_text, '"cli"'), "cli-flag",
                f"registry cli.source {source_rel!r} does not exist")
        ]
    findings = []
    code_subs: dict[str, int] = {}
    code_flags: dict[str, int] = {}
    for idx, line in enumerate(text.splitlines(), start=1):
        for m in CLI_SUBCOMMAND_RE.finditer(line):
            code_subs.setdefault(m.group(1), idx)
        for m in CLI_FLAG_RE.finditer(line):
            code_flags.setdefault(m.group(1), idx)
    reg_subs = set(cli.get("subcommands", []))
    reg_flags = set(cli.get("flags", []))
    for sub, idx in sorted(code_subs.items()):
        if sub not in reg_subs:
            findings.append(
                Finding(
                    source_rel, idx, "cli-flag",
                    f"subcommand '{sub}' is parsed here but missing from "
                    "the registry cli.subcommands list"))
    for sub in sorted(reg_subs - set(code_subs)):
        findings.append(
            Finding(
                REGISTRY_REL, registry_line(reg_text, f'"{sub}"'), "cli-flag",
                f"registry declares subcommand '{sub}' but {source_rel} "
                "never dispatches it"))
    for flag, idx in sorted(code_flags.items()):
        if flag not in reg_flags:
            findings.append(
                Finding(
                    source_rel, idx, "cli-flag",
                    f"flag '{flag}' is parsed here but missing from the "
                    "registry cli.flags list"))
    for flag in sorted(reg_flags - set(code_flags)):
        findings.append(
            Finding(
                REGISTRY_REL, registry_line(reg_text, f'"{flag}"'),
                "cli-flag",
                f"registry declares flag '{flag}' but {source_rel} never "
                "parses it"))
    return findings


# --- obs metric/span names ---------------------------------------------------


def check_spans(root: str, reg: dict, reg_text: str,
                cpp_files: list[str]) -> list[Finding]:
    metric_prefixes = reg.get("metric_prefixes", [])
    span_prefixes = reg.get("required_span_prefixes", [])
    if not metric_prefixes and not span_prefixes:
        return []
    src_files = [f for f in cpp_files if f.startswith("src/")]
    texts = {f: read_text(root, f) or "" for f in src_files}
    findings = []
    # Direction 1: every declared prefix must still exist as a literal in
    # src/ -- a rename that forgets the registry is caught here, a rename
    # that forgets the code is caught by CI's live trace validation.
    for prefix in list(metric_prefixes) + list(span_prefixes):
        needle = f'"{prefix}'
        if not any(needle in t for t in texts.values()):
            findings.append(
                Finding(
                    REGISTRY_REL, registry_line(reg_text, f'"{prefix}"'),
                    "span-prefix",
                    f"no string literal in src/ starts with \"{prefix}\"; "
                    "the registry prefix no longer matches the code"))
    # Direction 2: every metric registered in src/ must fall under a
    # declared prefix, so new instrumentation shows up in the registry.
    for relpath, text in sorted(texts.items()):
        for m in METRIC_REG_RE.finditer(text):
            name = m.group(1)
            if metric_prefixes and not any(
                    name.startswith(p) for p in metric_prefixes):
                findings.append(
                    Finding(
                        relpath, text.count("\n", 0, m.start()) + 1,
                        "span-prefix",
                        f"metric \"{name}\" is registered here but starts "
                        "with no metric_prefixes entry in "
                        "tools/contracts.json"))
    return findings


# --- CI driver stages --------------------------------------------------------


def check_ci_stages(root: str, reg: dict, reg_text: str) -> list[Finding]:
    stages = reg.get("ci_stages", [])
    text = read_text(root, DRIVER_REL)
    if text is None or not stages:
        return []
    findings = []
    toggle_lines: dict[str, tuple[int, str]] = {}
    for idx, line in enumerate(text.splitlines(), start=1):
        for m in TOGGLE_RE.finditer(line):
            toggle_lines.setdefault(m.group(1), (idx, line))
    declared_toggles = {s.get("toggle") for s in stages}
    for stage in stages:
        toggle = stage.get("toggle", "")
        if toggle not in toggle_lines:
            findings.append(
                Finding(
                    REGISTRY_REL, registry_line(reg_text, f'"{toggle}"'),
                    "ci-stage",
                    f"registry stage '{stage.get('name')}' names toggle "
                    f"{toggle} but {DRIVER_REL} has no "
                    f"${{{toggle}:-1}} gate"))
            continue
        idx, line = toggle_lines[toggle]
        guarded = '"$QUICK" == 0' in line
        if stage.get("quick") and guarded:
            findings.append(
                Finding(
                    DRIVER_REL, idx, "ci-stage",
                    f"stage '{stage.get('name')}' is skipped under --quick "
                    "here but the registry declares quick: true"))
        elif not stage.get("quick") and not guarded:
            findings.append(
                Finding(
                    DRIVER_REL, idx, "ci-stage",
                    f"stage '{stage.get('name')}' runs under --quick here "
                    "but the registry declares quick: false"))
    for toggle, (idx, _) in sorted(toggle_lines.items()):
        if toggle not in declared_toggles:
            findings.append(
                Finding(
                    DRIVER_REL, idx, "ci-stage",
                    f"driver gates a stage on {toggle} that no registry "
                    "ci_stages entry declares"))
    return findings


# --- ctest registration ------------------------------------------------------


def check_ctest_registration(root: str) -> list[Finding]:
    tests_dir = os.path.join(root, TESTS_DIR_REL)
    cmake_text = read_text(root, TESTS_CMAKE_REL)
    if not os.path.isdir(tests_dir) or cmake_text is None:
        return []
    findings = []
    for name in sorted(os.listdir(tests_dir)):
        if not name.startswith("test_"):
            continue
        if not name.endswith((".cpp", ".cc", ".py")):
            continue
        if name not in cmake_text:
            findings.append(
                Finding(
                    f"{TESTS_DIR_REL}/{name}", 1, "ctest-registration",
                    f"{name} is not referenced by {TESTS_CMAKE_REL}; a test "
                    "that ctest never runs enforces nothing -- register it "
                    "or delete it"))
    return findings


# --- scenario library --------------------------------------------------------


def check_scenario_registry(root: str, reg: dict) -> list[Finding]:
    """Every shipped scenarios/*.json must load (pure python json: a file
    the C++ parser would need to accept), carry a unique name that matches
    its filename, and appear in the generated README scenario table. A
    repo without a scenarios/ directory is simply out of scope."""
    findings = []
    names: dict[str, str] = {}
    for relpath, doc in scenario_docs(root):
        if doc is None:
            findings.append(
                Finding(
                    relpath, 1, "scenario-registry",
                    "scenario file is not a JSON object; every shipped "
                    "scenario must parse (wheels_campaign --scenario would "
                    "reject it)"))
            continue
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            findings.append(
                Finding(
                    relpath, 1, "scenario-registry",
                    'scenario file lacks a non-empty "name" string'))
            continue
        stem = os.path.basename(relpath)[:-len(".json")]
        if name != stem:
            findings.append(
                Finding(
                    relpath, 1, "scenario-registry",
                    f'scenario is named "{name}" but lives in {stem}.json; '
                    "the filename stem and the name must agree so "
                    "--scenario NAME and --scenario PATH load the same "
                    "world"))
        if name in names:
            findings.append(
                Finding(
                    relpath, 1, "scenario-registry",
                    f'scenario name "{name}" is already taken by '
                    f"{names[name]}; names key the dataset cache and must "
                    "be unique"))
        else:
            names[name] = relpath
    tables = reg.get("generated", {}).get("readme_tables", [])
    if not names or "contract-scenario-table" not in tables:
        return findings
    text = read_text(root, README_REL)
    if text is None:
        return findings
    lines = text.splitlines()
    begin = table_marker("contract-scenario-table", "begin")
    end = table_marker("contract-scenario-table", "end")
    try:
        b, e = lines.index(begin), lines.index(end)
    except ValueError:
        return findings  # missing markers are doc-drift's finding
    block = "\n".join(lines[b:e])
    for name, relpath in sorted(names.items()):
        if f"`{name}`" not in block:
            findings.append(
                Finding(
                    README_REL, b + 1, "scenario-registry",
                    f'scenario "{name}" ({relpath}) is missing from the '
                    "README scenario table; run tools/wheels_contract.py "
                    "--fix-docs"))
    return findings


# --- driver ------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root to analyze (default: repo "
                        "containing this script)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="findings output format (default: text)")
    parser.add_argument("--fix-docs", action="store_true",
                        help="regenerate the README tables from the "
                        "registry and exit")
    parser.add_argument("--fix-pins", action="store_true",
                        help="regenerate the pins header from the registry "
                        "and exit")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:20s} {desc}")
        return 0

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    reg_text = read_text(root, REGISTRY_REL)
    if reg_text is None:
        print(f"wheels-contract: cannot read {REGISTRY_REL} under {root}",
              file=sys.stderr)
        return 2
    try:
        reg = json.loads(reg_text)
    except json.JSONDecodeError as exc:
        print(f"wheels-contract: {REGISTRY_REL} is not valid JSON: {exc}",
              file=sys.stderr)
        return 2

    if args.fix_pins or args.fix_docs:
        if args.fix_pins:
            pins_rel = reg.get("generated", {}).get("pins_header")
            if not pins_rel:
                print("wheels-contract: registry declares no "
                      "generated.pins_header", file=sys.stderr)
                return 2
            with open(os.path.join(root, pins_rel), "w",
                      encoding="utf-8") as f:
                f.write(render_pins_header(reg))
            print(f"wheels-contract: wrote {pins_rel}")
        if args.fix_docs:
            fixed = fix_docs(root, reg)
            for name in fixed:
                print(f"wheels-contract: regenerated {name} in {README_REL}")
            missing = [
                t for t in reg.get("generated", {}).get("readme_tables", [])
                if t not in fixed
            ]
            for name in missing:
                print(f"wheels-contract: {README_REL} has no markers for "
                      f"{name}; add {table_marker(name, 'begin')} / "
                      f"{table_marker(name, 'end')} first", file=sys.stderr)
            if missing:
                return 2
        return 0

    cpp_files = gather_cpp_files(root)

    findings = check_registry(reg, REGISTRY_REL, reg_text)
    registry_broken = bool(findings)
    if not registry_broken:
        findings += check_schema_pin(root, reg)
        findings += check_golden_pin(root, reg, cpp_files)
        findings += check_pins_stale(root, reg)
        findings += check_env(root, reg, reg_text, cpp_files)
        findings += check_doc_tables(root, reg)
        findings += check_cli(root, reg, reg_text)
        findings += check_spans(root, reg, reg_text, cpp_files)
        findings += check_ci_stages(root, reg, reg_text)
        findings += check_ctest_registration(root)
        findings += check_scenario_registry(root, reg)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    files_scanned = len(cpp_files) + len(scenario_docs(root)) + sum(
        1 for doc in DOC_SCAN if os.path.exists(os.path.join(root, doc)))

    if args.format == "json":
        print(json.dumps(
            {
                "tool": "wheels-contract",
                "files_scanned": files_scanned,
                "findings": [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "message": f.message,
                    } for f in findings
                ],
            },
            indent=2,
            sort_keys=True))
        return 1 if findings else 0
    if args.format == "sarif":
        print(sarif.render_sarif("wheels-contract", RULES, findings))
        return 1 if findings else 0

    for f in findings:
        print(f.render())
    if findings:
        print(f"wheels-contract: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)")
        return 1
    print(f"wheels-contract: OK ({files_scanned} files cross-checked "
          "against tools/contracts.json)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
