"""Shared SARIF 2.1.0 emitter for the wheels static-analysis tools.

wheels_lint.py, wheels_arch.py and wheels_contract.py each expose
--format=sarif through this module so CI systems that ingest SARIF
(GitHub code scanning, VS Code SARIF viewers) see one consistent shape:
one run per tool invocation, one reporting descriptor per rule that can
fire, one result per finding with a file/line location.

The emitter is deliberately lossless with respect to the tools' native
JSON format ({"tool", "files_scanned", "findings": [...]}): every
finding maps 1:1 onto a SARIF result (ruleId, message.text, uri,
startLine), which is what the per-tool round-trip tests assert.
"""

from __future__ import annotations

import json

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"


def findings_to_sarif(tool_name: str, rules: dict[str, str],
                      findings: list) -> dict:
    """Build the SARIF document for one tool run.

    `rules` maps every rule id the tool can report to its one-line
    description (only rules that actually fired are emitted as reporting
    descriptors, keeping the document small and deterministic). Each
    finding needs `.rule`, `.path`, `.line`, `.message` attributes --
    the Finding dataclass all three tools share structurally.
    """
    fired = sorted({f.rule for f in findings})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "rules": [{
                        "id": rule,
                        "shortDescription": {
                            "text": rules.get(rule, rule),
                        },
                    } for rule in fired],
                },
            },
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": f.line},
                    },
                }],
            } for f in findings],
        }],
    }


def render_sarif(tool_name: str, rules: dict[str, str],
                 findings: list) -> str:
    return json.dumps(
        findings_to_sarif(tool_name, rules, findings),
        indent=2,
        sort_keys=True)
