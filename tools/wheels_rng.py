#!/usr/bin/env python3
"""wheels-rng: whole-program RNG provenance analyzer.

Every figure regenerates bit-for-bit only because all stochastic processes
draw from `Rng::fork` sub-streams of the campaign seed. The lexical
duplicate-fork lint rule only sees one scope at a time; this tool parses
all Rng usage under src/ into a whole-program fork graph (parent scope ->
child label/salt) and enforces stream-level rules across translation
units:

  fork-collision    the same effective salt (string label via FNV-1a, or
                    integer literal) forked from one parent node at two
                    distinct sites, anywhere in the program. Identical
                    (parent, salt) pairs yield bit-identical streams and
                    silently correlate processes meant to be independent.
  rng-by-value      a live named Rng stream is duplicated: plain
                    copy-initialization from a named stream, a non-const
                    stream passed by value to a function and then used
                    again afterwards, or a const stream handed by value to
                    two sinks. Copies replay the same bytes; fork()
                    instead. (Passing a fresh fork by value -- the repo's
                    sink idiom -- is fine and not flagged.)
  rng-member-copy   one named stream copied into two or more Rng members
                    in a mem-init list, or an Rng member assigned from
                    another Rng name. Both members then replay identical
                    draws.
  draw-in-unordered draw/fork calls on an Rng inside a range-for over a
                    std::unordered_* container: the draw order follows the
                    hash order, so streams diverge between libstdc++
                    versions even though each draw is deterministic.
  unlabeled-fork    a computed (non-literal) fork argument without a
                    `// wheels-rng: dynamic(<reason>)` annotation on the
                    same or previous line. Dynamic salts are legitimate
                    (per-city, per-cycle streams) but must be declared so
                    the fork graph records an explicit wildcard edge.
  fork-graph-drift  the edge set of the rebuilt graph differs from the
                    pinned manifest tools/rng_graph.json. Regenerate with
                    --fix-graph after an intentional stream change; the
                    pin turns silent stream-topology drift into a CI diff.

A runtime trace (WHEELS_RNG_AUDIT=1 + WHEELS_RNG_AUDIT_OUT=<path>, see
src/obs/rng_audit.h) can be cross-checked with --check-trace:

  trace-unknown-edge  a runtime fork edge (label or salt) that no static
                      graph edge under the mapped parent allows
  trace-conflict      one runtime stream id produced by two distinct
                      (parent, salt) pairs, or both seeded and forked
  trace-draw-mismatch with two traces (jobs=1 vs jobs=4), a stream whose
                      draw count differs between them

Division of labor: wheels_lint's duplicate-fork stays the fast lexical
same-scope check; this analyzer owns everything that needs the program
view (cross-TU collisions, alias chains, the pinned graph, the runtime
audit).

Suppress a finding with `// wheels-rng: allow(<rule>)` on the same line or
the line directly above it. `// wheels-rng: dynamic(<reason>)` both
documents and suppresses unlabeled-fork for computed arguments.

Usage:
  tools/wheels_rng.py [--root DIR] [--graph FILE] [--format text|json|sarif]
                      [--fix-graph] [--dot] [--check-trace T1 [T2 ...]]
                      [--list-rules]

Exits 0 when clean, 1 when any finding fires, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import re
import sys
from dataclasses import dataclass, field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sarif  # noqa: E402  (sibling module, shared with the other tools)
from wheels_lint import (  # noqa: E402
    strip_comments_and_strings, collect_unordered_names, RANGE_FOR_RE)

CPP_EXTENSIONS = (".cpp", ".h", ".hpp", ".cc")

RULES = {
    "fork-collision":
        "same effective fork salt reachable twice under one parent node "
        "(whole program, across translation units)",
    "rng-by-value":
        "live Rng stream duplicated by value (copy-init, or passed by "
        "value and used again)",
    "rng-member-copy":
        "one Rng name copied into multiple members (identical replayed "
        "streams)",
    "draw-in-unordered":
        "Rng draw/fork inside iteration over an unordered container "
        "(hash-order draw sequence)",
    "unlabeled-fork":
        "computed fork argument without a wheels-rng: dynamic(<reason>) "
        "annotation",
    "fork-graph-drift":
        "rebuilt fork graph differs from the pinned tools/rng_graph.json "
        "(regenerate with --fix-graph)",
    "trace-unknown-edge":
        "runtime fork edge absent from the static fork graph",
    "trace-conflict":
        "one runtime stream id produced by distinct (parent, salt) pairs",
    "trace-draw-mismatch":
        "per-stream draw counts differ between two audit traces",
}

ALLOW_RE = re.compile(r"//\s*wheels-rng:\s*allow\(([a-z\-, ]+)\)")
DYNAMIC_RE = re.compile(r"//\s*wheels-rng:\s*dynamic\(([^)]*)\)")

FNV_OFFSET = 1469598103934665603
FNV_PRIME = 1099511628211
MASK64 = (1 << 64) - 1


def fnv1a(s: str) -> int:
    h = FNV_OFFSET
    for b in s.encode("utf-8"):
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Scope / span model
# ---------------------------------------------------------------------------

CONTROL_KEYWORDS = ("if", "for", "while", "switch", "do", "else", "try",
                    "catch", "return")
FUNC_NAME_RE = re.compile(r"([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
TYPE_RE = re.compile(r"\b(?:class|struct|union)\s+([A-Za-z_][\w:]*)")


@dataclass
class Span:
    kind: str          # "function" | "type" | "namespace" | "block"
    name: str          # as written ("Campaign::run", "PhoneSet", ...)
    header_start: int  # text offset where the header chunk begins
    open: int          # offset of '{'
    close: int = -1    # offset of matching '}'
    parent: "Span | None" = None


def classify_header(header: str) -> tuple[str, str]:
    """Classify the text between the previous boundary and a '{'."""
    h = header.strip()
    if not h or h.endswith("=") or h.endswith(",") or h.endswith("("):
        return "block", ""
    first = re.match(r"[A-Za-z_]\w*", h)
    if first and first.group(0) in CONTROL_KEYWORDS:
        return "block", ""
    if re.search(r"\bnamespace\b", h):
        return "namespace", ""
    if "(" in h:
        for m in FUNC_NAME_RE.finditer(h):
            name = re.sub(r"\s+", "", m.group(1))
            base = name.split("::")[-1]
            if base not in CONTROL_KEYWORDS and base != "operator":
                return "function", name
        return "block", ""
    tm = TYPE_RE.search(h)
    if tm:
        return "type", tm.group(1).replace(" ", "")
    return "block", ""


def build_spans(text: str) -> list[Span]:
    """One literal-aware pass over comment-stripped text collecting every
    brace scope classified as function/type/namespace/block. The header
    chunk of a function span includes its mem-init list."""
    spans: list[Span] = []
    stack: list[Span] = []
    boundary = 0  # position after the last ';', '{' or '}'
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"':
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            continue
        if c == "{":
            kind, name = classify_header(text[boundary:i])
            span = Span(kind, name, boundary, i,
                        parent=stack[-1] if stack else None)
            spans.append(span)
            stack.append(span)
            boundary = i + 1
        elif c == "}":
            if stack:
                stack.pop().close = i
            boundary = i + 1
        elif c == ";":
            # A ';' only resets the header boundary outside parentheses;
            # for(;;) headers must stay one chunk. Cheap approximation:
            # scan back for an unclosed '(' in the current chunk.
            chunk = text[boundary:i]
            if chunk.count("(") <= chunk.count(")"):
                boundary = i + 1
        i += 1
    for s in stack:  # unterminated (truncated file): close at EOF
        s.close = n
    return spans


def enclosing(spans: list[Span], pos: int, kinds: tuple[str, ...]):
    best = None
    for s in spans:
        if s.kind in kinds and s.header_start <= pos < s.close:
            if best is None or s.header_start >= best.header_start:
                best = s
    return best


def span_class(span: Span | None) -> str:
    """Innermost enclosing class name for a span (from type-span nesting or
    from the qualified function name)."""
    s = span
    while s is not None:
        if s.kind == "type":
            return s.name.split("::")[-1]
        if s.kind == "function" and "::" in s.name:
            return s.name.split("::")[-2]
        s = s.parent
    return ""


# ---------------------------------------------------------------------------
# Per-file extraction
# ---------------------------------------------------------------------------

FORK_TOKEN_RE = re.compile(r"(?:\.|->)\s*fork\s*\(")
RECV_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*[A-Za-z_]\w*)\s*$")
DECL_BIND_RE = re.compile(
    r"(?:const\s+)?(?:wheels\s*::\s*)?(?:Rng|auto)\s+&?\s*(\w+)\s*"
    r"(?:=|\{|\()\s*$")
MEMBER_BIND_RE = re.compile(r"(\w+)\s*[({]\s*$")
RNG_DECL_RE = re.compile(
    r"\b(?P<const>const\s+)?Rng\s*(?P<ref>&)?\s+(?P<name>\w+)\s*"
    r"(?P<init>;|=|\(|\{)")
RNG_PARAM_RE = re.compile(r"(?P<const>const\s+)?\bRng\s*(?P<ref>&)?\s+"
                          r"(?P<name>\w+)\s*[,)=]")
INT_LIT_RE = re.compile(r"^(?:0[xX][0-9a-fA-F]+|\d+)(?:[uUlL]*)$")
STRING_LIT_RE = re.compile(r'^"([^"]*)"$')
DRAW_CALL_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(?:next_u64|uniform|uniform_index|normal|"
    r"lognormal|exponential|chance|fork)\s*\(")


@dataclass
class Link:
    kind: str   # "label" | "salt" | "dynamic"
    arg: str    # label text, int literal text, or normalized expression
    pos: int
    line: int


@dataclass
class Chain:
    file: str
    func: str            # enclosing function name as written ('' if none)
    cls: str             # enclosing class ('' if none)
    recv: str            # receiver base identifier
    recv_full: str       # full dotted receiver
    links: list[Link]
    decl_target: str = ""      # local/member name bound to the result
    decl_is_member: bool = False
    pos: int = 0
    line: int = 0


@dataclass
class FileModel:
    relpath: str
    text: str
    lines_index: list[int]
    spans: list[Span]
    chains: list[Chain] = field(default_factory=list)
    # (func_key, name) -> {"kind": local/param, "const": bool, "pos": int}
    rng_names: dict = field(default_factory=dict)
    seed_decls: list = field(default_factory=list)   # (func_key, name, pos)
    copy_inits: list = field(default_factory=list)   # (func_key, name, src, line)
    member_decls: set = field(default_factory=set)   # (cls, name)
    member_seed_binds: list = field(default_factory=list)  # (cls, name, line)
    allows: dict = field(default_factory=dict)
    dynamics: dict = field(default_factory=dict)     # line -> reason


def line_of(index: list[int], pos: int) -> int:
    return bisect.bisect_right(index, pos) + 1


DIGIT_SEP_RE = re.compile(r"(\d)'([\da-fA-F])")


def strip_digit_separators(raw: str) -> str:
    """C++14 digit separators (1'000.0) read as char literals to the
    shared lexer and swallow everything to the next apostrophe; removing
    them first keeps offsets line-accurate (separators never span
    lines)."""
    prev = None
    while prev != raw:
        prev = raw
        raw = DIGIT_SEP_RE.sub(r"\1\2", raw)
    return raw


def collect_annotations(raw: str) -> tuple[dict, dict]:
    allows: dict[int, set[str]] = {}
    dynamics: dict[int, str] = {}
    for idx, line in enumerate(raw.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows.setdefault(idx, set()).update(rules)
            allows.setdefault(idx + 1, set()).update(rules)
        d = DYNAMIC_RE.search(line)
        if d:
            reason = d.group(1).strip()
            dynamics[idx] = reason
            dynamics.setdefault(idx + 1, reason)
    return allows, dynamics


def parse_balanced(text: str, open_pos: int) -> tuple[str, int]:
    """text[open_pos] == '('; returns (inner, pos_after_close)."""
    depth, i, n = 0, open_pos, len(text)
    while i < n:
        c = text[i]
        if c == '"':
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                i += 1
        elif c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i], i + 1
        i += 1
    return text[open_pos + 1:], n


def normalize_expr(expr: str) -> str:
    return re.sub(r"\s+", " ", expr.strip())


def classify_arg(arg: str) -> tuple[str, str]:
    a = arg.strip()
    sm = STRING_LIT_RE.match(a)
    if sm:
        return "label", sm.group(1)
    if INT_LIT_RE.match(a):
        return "salt", a.rstrip("uUlL")
    return "dynamic", normalize_expr(a)


def func_key(relpath: str, span: Span | None) -> str:
    return f"{relpath}:{span.name}" if span is not None else f"{relpath}:"


def meminit_start(header: str) -> int | None:
    """Offset in `header` just past the parameter-list ')' when the header
    has a mem-init list (': member(...)' ...) after it, else None."""
    pm = FUNC_NAME_RE.search(header)
    if pm is None:
        return None
    _inner, after = parse_balanced(header, header.find("(", pm.start()))
    rest = header[after:]
    cm = re.match(r"\s*(?:noexcept(?:\([^()]*\))?\s*)?:", rest)
    if cm is None:
        return None
    return after


def extract_file(path: str, root: str) -> FileModel:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    relpath = os.path.relpath(path, root).replace(os.sep, "/")
    text = strip_comments_and_strings(strip_digit_separators(raw),
                                      keep_strings=True)
    index = [i for i, ch in enumerate(text) if ch == "\n"]
    spans = build_spans(text)
    allows, dynamics = collect_annotations(raw)
    fm = FileModel(relpath, text, index, spans, allows=allows,
                   dynamics=dynamics)

    # Rng-typed declarations: locals, members and copy-inits.
    for m in RNG_DECL_RE.finditer(text):
        name, init = m.group("name"), m.group("init")
        fn = enclosing(spans, m.start(), ("function",))
        if fn is None:
            ty = enclosing(spans, m.start(), ("type",))
            if ty is not None and init == ";":
                fm.member_decls.add((ty.name.split("::")[-1], name))
            continue
        key = func_key(relpath, fn)
        fm.rng_names[(key, name)] = {
            "kind": "local", "const": bool(m.group("const")),
            "ref": bool(m.group("ref")), "pos": m.start(),
        }
        if m.group("ref"):
            continue  # reference locals alias, they do not copy
        init_start = m.end() - 1
        if init == ";":
            fm.seed_decls.append((key, name, m.start()))
        elif init in "({":
            closer = ")" if init == "(" else "}"
            if init == "(":
                inner, _ = parse_balanced(text, init_start)
            else:
                end = text.find(closer, init_start)
                inner = text[init_start + 1:end] if end != -1 else ""
            inner = inner.strip()
            if ".fork" in inner or "->fork" in inner:
                continue  # bound via the chain scan
            if re.fullmatch(r"\w+", inner):
                fm.copy_inits.append(
                    (key, name, inner, line_of(index, m.start())))
            else:
                fm.seed_decls.append((key, name, m.start()))
        else:  # '='
            rest = text[m.end():]
            rm = re.match(r"\s*([^;\n]*)", rest)
            rhs = (rm.group(1) if rm else "").strip()
            if ".fork" in rhs or "->fork" in rhs:
                continue
            if re.fullmatch(r"\w+", rhs):
                fm.copy_inits.append(
                    (key, name, rhs, line_of(index, m.start())))
            else:
                fm.seed_decls.append((key, name, m.start()))

    # Params of function spans.
    for s in spans:
        if s.kind != "function":
            continue
        header = text[s.header_start:s.open]
        pidx = header.find("(")
        if pidx == -1:
            continue
        params, _ = parse_balanced(header, pidx)
        for m in RNG_PARAM_RE.finditer(params + ")"):
            fm.rng_names[(func_key(relpath, s), m.group("name"))] = {
                "kind": "param", "const": bool(m.group("const")),
                "ref": bool(m.group("ref")), "pos": s.header_start,
            }

    # Fork chains.
    consumed: set[int] = set()
    for m in FORK_TOKEN_RE.finditer(text):
        if m.start() in consumed:
            continue
        before = text[:m.start()]
        rm = RECV_RE.search(before)
        if rm is None:
            continue  # chained on a temporary: `make()` etc.
        recv_full = re.sub(r"\s+", "", rm.group(1))
        for prefix in ("this->", "this."):
            if recv_full.startswith(prefix):
                recv_full = recv_full[len(prefix):]
        recv = re.split(r"\.|->", recv_full)[-1]
        fn = enclosing(spans, m.start(), ("function",))
        links: list[Link] = []
        pos = m.end() - 1
        while True:
            inner, after = parse_balanced(text, pos)
            kind, arg = classify_arg(inner)
            links.append(Link(kind, arg, pos, line_of(index, pos)))
            nm = FORK_TOKEN_RE.match(text, after)
            # allow whitespace before the next .fork(
            if nm is None:
                wm = re.match(r"\s*", text[after:])
                nm = FORK_TOKEN_RE.match(text, after + wm.end())
            if nm is None:
                break
            consumed.add(nm.start())
            pos = nm.end() - 1
        chain = Chain(
            file=relpath,
            func=fn.name if fn else "",
            cls=span_class(fn if fn else enclosing(spans, m.start(),
                                                   ("type",))),
            recv=recv, recv_full=recv_full, links=links,
            pos=rm.start(1), line=line_of(index, rm.start(1)))
        dm = DECL_BIND_RE.search(before[:rm.start(1)])
        if dm:
            chain.decl_target = dm.group(1)
        else:
            mm = MEMBER_BIND_RE.search(before[:rm.start(1)])
            if mm:
                cls = chain.cls
                if cls and (cls, mm.group(1)) in fm.member_decls:
                    chain.decl_target = mm.group(1)
                    chain.decl_is_member = True
        fm.chains.append(chain)

    # Member seed bindings in mem-init lists: `rng_(cfg_.seed)` where rng_
    # is a declared Rng member and the initializer is not a fork chain.
    for s in spans:
        if s.kind != "function":
            continue
        header = text[s.header_start:s.open]
        colon = meminit_start(header)
        if colon is None:
            continue
        cls = span_class(s)
        if not cls:
            continue
        for mi in re.finditer(r"(\w+)\s*[({]", header[colon:]):
            name = mi.group(1)
            if (cls, name) in fm.member_decls:
                abs_pos = s.header_start + colon + mi.start()
                inner, _ = parse_balanced(
                    text, s.header_start + colon + mi.end() - 1) \
                    if header[colon:][mi.end() - 1] == "(" else ("", 0)
                if ".fork" in inner or "->fork" in inner:
                    continue
                fm.member_seed_binds.append(
                    (cls, name, line_of(index, abs_pos), inner.strip(),
                     func_key(relpath, s)))
    return fm


# ---------------------------------------------------------------------------
# Whole-program graph
# ---------------------------------------------------------------------------

@dataclass
class Edge:
    parent: str
    kind: str   # label | salt | dynamic
    arg: str
    file: str
    line: int
    annotated: bool = False

    @property
    def name(self) -> str:
        if self.kind == "label":
            return self.arg
        if self.kind == "salt":
            return f"#{self.arg}"
        return f"?{self.arg}"

    @property
    def child(self) -> str:
        return f"{self.parent}/{self.name}"

    def effective_salt(self):
        if self.kind == "label":
            return fnv1a(self.arg)
        if self.kind == "salt":
            return int(self.arg, 0)
        return None


@dataclass
class Graph:
    edges: list[Edge] = field(default_factory=list)
    roots: dict[str, str] = field(default_factory=dict)  # node -> kind
    unresolved: list = field(default_factory=list)


def build_graph(models: list[FileModel]) -> Graph:
    graph = Graph()
    seed_locals = set()
    local_binds: dict[tuple[str, str], Chain] = {}
    member_binds: dict[tuple[str, str], Chain] = {}
    member_seeds: dict[tuple[str, str], str] = {}
    members: set[tuple[str, str]] = set()
    copy_alias: dict[tuple[str, str], str] = {}
    rng_names: dict[tuple[str, str], dict] = {}

    for fm in models:
        members |= fm.member_decls
        rng_names.update(fm.rng_names)
        for key, name, _pos in fm.seed_decls:
            seed_locals.add((key, name))
        for key, name, src, _line in fm.copy_inits:
            copy_alias[(key, name)] = src
        for cls, name, _line, _init, fkey in fm.member_seed_binds:
            member_seeds[(cls, name)] = fkey
        for ch in fm.chains:
            if ch.decl_target and ch.decl_is_member:
                member_binds[(ch.cls, ch.decl_target)] = ch
            elif ch.decl_target:
                key = func_key(ch.file, None).rstrip(":") + f":{ch.func}"
                local_binds[(f"{ch.file}:{ch.func}", ch.decl_target)] = ch

    def resolve(name: str, fkey: str, cls: str, stack: frozenset) -> str:
        token = ("n", fkey, cls, name)
        if token in stack:
            return f"extern:{fkey}:{name}"
        stack = stack | {token}
        seen_alias = set()
        while (fkey, name) in copy_alias and name not in seen_alias:
            seen_alias.add(name)
            name = copy_alias[(fkey, name)]
        if (fkey, name) in seed_locals:
            node = f"seed:{fkey}:{name}"
            graph.roots[node] = "seed"
            return node
        if (fkey, name) in local_binds:
            return chain_node(local_binds[(fkey, name)], stack)
        if cls and (cls, name) in member_binds:
            return chain_node(member_binds[(cls, name)], stack)
        if cls and (cls, name) in member_seeds:
            node = f"seed:member:{cls}::{name}"
            graph.roots[node] = "seed"
            return node
        info = rng_names.get((fkey, name))
        if info is not None and info["kind"] == "param":
            node = f"param:{fkey}:{name}"
            graph.roots[node] = "opaque"
            return node
        if cls and (cls, name) in members:
            node = f"member:{cls}::{name}"
            graph.roots[node] = "opaque"
            return node
        node = f"extern:{fkey}:{name}"
        graph.roots[node] = "opaque"
        return node

    def chain_node(ch: Chain, stack: frozenset) -> str:
        token = ("c", ch.file, ch.pos)
        if token in stack:
            return f"extern:{ch.file}:{ch.func}:{ch.recv}"
        stack = stack | {token}
        node = resolve(ch.recv, f"{ch.file}:{ch.func}", ch.cls, stack)
        for link in ch.links:
            edge = Edge(node, link.kind, link.arg, ch.file, link.line)
            node = edge.child
        return node

    for fm in models:
        for ch in fm.chains:
            parent = resolve(ch.recv, f"{ch.file}:{ch.func}", ch.cls,
                             frozenset())
            for link in ch.links:
                annotated = link.line in fm.dynamics
                edge = Edge(parent, link.kind, link.arg, ch.file,
                            link.line, annotated)
                graph.edges.append(edge)
                parent = edge.child
    return graph


# ---------------------------------------------------------------------------
# Static rules
# ---------------------------------------------------------------------------

def check_unlabeled_fork(graph: Graph) -> list[Finding]:
    findings = []
    for e in graph.edges:
        if e.kind == "dynamic" and not e.annotated:
            findings.append(Finding(
                e.file, e.line, "unlabeled-fork",
                f"computed fork argument '{e.arg}' needs a "
                "// wheels-rng: dynamic(<reason>) annotation so the fork "
                "graph records a declared wildcard edge"))
    return findings


def check_fork_collision(graph: Graph) -> list[Finding]:
    findings = []
    groups: dict[tuple[str, int], list[Edge]] = {}
    for e in graph.edges:
        salt = e.effective_salt()
        if salt is None:
            continue
        groups.setdefault((e.parent, salt), []).append(e)
    for (parent, _salt), edges in sorted(groups.items()):
        sites = sorted({(e.file, e.line) for e in edges})
        if len(sites) < 2:
            continue
        first = sites[0]
        for f, line in sites[1:]:
            findings.append(Finding(
                f, line, "fork-collision",
                f"fork '{edges[0].name}' on parent '{parent}' collides "
                f"with {first[0]}:{first[1]}: identical (parent, salt) "
                "pairs fork bit-identical streams across translation "
                "units"))
    return findings


def check_rng_by_value(models: list[FileModel]) -> list[Finding]:
    findings = []
    # Functions/ctors taking Rng by value anywhere in the program.
    byval: set[str] = set()
    for fm in models:
        for m in re.finditer(r"\bRng\s+\w+\s*[,)]", fm.text):
            before = fm.text[:m.start()]
            call = re.search(r"([A-Za-z_]\w*)\s*\([^()]*$", before)
            if call:
                byval.add(call.group(1).split("::")[-1])
    byval -= {"Rng"}  # the copy ctor itself is handled separately

    for fm in models:
        for key, name, src, line in fm.copy_inits:
            if (key, src) in fm.rng_names or any(
                    (c, src) in fm.member_decls for c, _ in fm.member_decls):
                findings.append(Finding(
                    fm.relpath, line, "rng-by-value",
                    f"'{name}' copy-initialized from live stream '{src}': "
                    "a copy replays the same bytes; fork() a labelled "
                    "child instead"))
        for s in fm.spans:
            if s.kind != "function":
                continue
            key = func_key(fm.relpath, s)
            names = {n: info for (k, n), info in fm.rng_names.items()
                     if k == key}
            if not names:
                continue
            body = fm.text[s.open:s.close]
            passes: dict[str, list[int]] = {}
            for cm in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", body):
                if cm.group(1).split("::")[-1] not in byval:
                    continue
                inner, after = parse_balanced(body, cm.end() - 1)
                for arg in split_args(inner):
                    arg = arg.strip()
                    if arg in names:
                        passes.setdefault(arg, []).append(
                            (s.open + cm.start(), s.open + after))
            for nm, sites in sorted(passes.items()):
                info = names[nm]
                if info.get("ref"):
                    continue
                for start, after in sites:
                    tail = fm.text[after:s.close]
                    used_again = re.search(rf"\b{re.escape(nm)}\b", tail)
                    hazard = (not info["const"] and used_again) or (
                        info["const"] and len(sites) > 1)
                    if hazard:
                        line = line_of(fm.lines_index, start)
                        findings.append(Finding(
                            fm.relpath, line, "rng-by-value",
                            f"live stream '{nm}' passed by value and used "
                            "again afterwards: callee and caller replay "
                            "the same bytes; pass a fork() child or hand "
                            "the stream off permanently"))
                        break
    return findings


def split_args(inner: str) -> list[str]:
    args, depth, cur = [], 0, []
    for ch in inner:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        args.append("".join(cur))
    return args


def check_member_copy(models: list[FileModel]) -> list[Finding]:
    findings = []
    for fm in models:
        for s in fm.spans:
            if s.kind != "function":
                continue
            cls = span_class(s)
            if not cls:
                continue
            header = fm.text[s.header_start:s.open]
            colon = meminit_start(header)
            if colon is None:
                continue
            copies: dict[str, list[tuple[str, int]]] = {}
            for mi in re.finditer(r"(\w+)\s*\(\s*(\w+)\s*\)", header[colon:]):
                member, src = mi.group(1), mi.group(2)
                if (cls, member) not in fm.member_decls:
                    continue
                key = func_key(fm.relpath, s)
                if (key, src) not in fm.rng_names:
                    continue
                abs_pos = s.header_start + colon + mi.start()
                copies.setdefault(src, []).append(
                    (member, line_of(fm.lines_index, abs_pos)))
            for src, sites in sorted(copies.items()):
                for member, line in sites[1:]:
                    findings.append(Finding(
                        fm.relpath, line, "rng-member-copy",
                        f"member '{member}' is the second Rng member "
                        f"copied from '{src}' in this mem-init list "
                        f"(first: '{sites[0][0]}'): both members replay "
                        "identical draws; fork() distinct children"))
    return findings


def check_draw_in_unordered(models: list[FileModel]) -> list[Finding]:
    findings = []
    for fm in models:
        lines = fm.text.splitlines()
        unordered = collect_unordered_names(lines)
        if not unordered:
            continue
        known = {n for (_k, n) in fm.rng_names} | \
                {n for (_c, n) in fm.member_decls}
        for m in RANGE_FOR_RE.finditer(fm.text):
            target = m.group(1).strip()
            base = re.split(r"[.\->\[(]", target)[-1] or target
            candidates = {target, target.split(".")[-1].strip(),
                          target.split("->")[-1].strip(), base.strip()}
            if not (candidates & unordered):
                continue
            open_brace = fm.text.find("{", m.end())
            if open_brace == -1:
                continue
            depth, i, n = 0, open_brace, len(fm.text)
            while i < n:
                if fm.text[i] == "{":
                    depth += 1
                elif fm.text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            body = fm.text[open_brace:i]
            for dm in DRAW_CALL_RE.finditer(body):
                if dm.group(1) in known:
                    line = line_of(fm.lines_index, open_brace + dm.start())
                    findings.append(Finding(
                        fm.relpath, line, "draw-in-unordered",
                        f"draw on Rng '{dm.group(1)}' inside iteration "
                        f"over unordered container '{target}': the draw "
                        "order follows the hash order, so the stream "
                        "diverges across standard-library versions"))
    return findings


# ---------------------------------------------------------------------------
# Manifest / DOT / trace
# ---------------------------------------------------------------------------

def canonical_edges(graph: Graph) -> list[dict]:
    seen = set()
    out = []
    for e in graph.edges:
        key = (e.parent, e.kind, e.arg, e.file)
        if key in seen:
            continue
        seen.add(key)
        out.append({"parent": e.parent, "kind": e.kind, "arg": e.arg,
                    "file": e.file})
    out.sort(key=lambda d: (d["parent"], d["kind"], d["arg"], d["file"]))
    return out


def check_graph_drift(graph: Graph, graph_path: str,
                      rel_graph: str) -> list[Finding]:
    if not os.path.exists(graph_path):
        print(f"wheels-rng: note: no pinned graph at {rel_graph}; "
              "drift check skipped (generate with --fix-graph)",
              file=sys.stderr)
        return []
    with open(graph_path, encoding="utf-8") as f:
        pinned = json.load(f)
    pin_set = {(d["parent"], d["kind"], d["arg"], d["file"])
               for d in pinned.get("edges", [])}
    now_set = {(d["parent"], d["kind"], d["arg"], d["file"])
               for d in canonical_edges(graph)}
    findings = []
    for parent, kind, arg, file in sorted(now_set - pin_set):
        findings.append(Finding(
            rel_graph, 1, "fork-graph-drift",
            f"new fork edge not in the pinned graph: {parent} --[{kind} "
            f"{arg}]--> ({file}); rerun --fix-graph if intentional"))
    for parent, kind, arg, file in sorted(pin_set - now_set):
        findings.append(Finding(
            rel_graph, 1, "fork-graph-drift",
            f"pinned fork edge no longer in the program: {parent} "
            f"--[{kind} {arg}]--> ({file}); rerun --fix-graph if "
            "intentional"))
    return findings


def write_graph(graph: Graph, graph_path: str) -> None:
    payload = {
        "comment": [
            "Pinned whole-program RNG fork graph; regenerate with",
            "  tools/wheels_rng.py --fix-graph",
            "Checked by the fork-graph-drift rule and the wheels-rng CI "
            "stage.",
        ],
        "roots": [
            {"node": node, "kind": kind}
            for node, kind in sorted(graph.roots.items())
        ],
        "edges": canonical_edges(graph),
    }
    with open(graph_path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=False)
        f.write("\n")


def dot_escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"')


def render_dot(graph: Graph) -> str:
    lines = ["digraph rng_forks {", "  rankdir=LR;",
             '  node [shape=box, fontsize=10, fontname="monospace"];']
    nodes = set()
    for e in canonical_edges(graph):
        nodes.add(e["parent"])
        child = e["parent"] + "/" + (
            e["arg"] if e["kind"] == "label" else
            ("#" + e["arg"] if e["kind"] == "salt" else "?" + e["arg"]))
        nodes.add(child)
    for node in sorted(nodes):
        label = node.split("/")[-1] if "/" in node else node
        shape = ' shape=ellipse' if "/" not in node else ""
        lines.append(f'  "{dot_escape(node)}" '
                     f'[label="{dot_escape(label)}"{shape}];')
    for e in canonical_edges(graph):
        child = e["parent"] + "/" + (
            e["arg"] if e["kind"] == "label" else
            ("#" + e["arg"] if e["kind"] == "salt" else "?" + e["arg"]))
        style = ' [style=dashed]' if e["kind"] == "dynamic" else ""
        lines.append(f'  "{dot_escape(e["parent"])}" -> '
                     f'"{dot_escape(child)}"{style};')
    lines.append("}")
    return "\n".join(lines)


def load_trace(path: str) -> tuple[dict, list[Finding]]:
    streams: dict[str, dict] = {}
    findings = []
    rel = path
    with open(path, encoding="utf-8") as f:
        for idx, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                findings.append(Finding(
                    rel, idx, "trace-conflict",
                    "unparseable JSONL line in audit trace"))
                continue
            streams[obj["id"]] = dict(obj, _line=idx)
            if obj.get("conflicts", 0):
                findings.append(Finding(
                    rel, idx, "trace-conflict",
                    f"stream {obj['id']} recorded {obj['conflicts']} "
                    "provenance conflict(s): one id arose from distinct "
                    "(parent, salt) pairs or was both seeded and forked"))
    return streams, findings


def check_trace_against_graph(graph: Graph, streams: dict,
                              trace_path: str) -> list[Finding]:
    """Verify the runtime fork tree embeds into the static graph. Roots
    map to the set of all static seed roots; a child must match an edge of
    one of its parent's candidate nodes (labels by text, salts by value,
    dynamic edges match anything). Edges owned by opaque roots float: Rng
    values flow into functions as parameters the static analysis cannot
    link, so their subtrees may attach anywhere."""
    by_parent: dict[str, list[Edge]] = {}
    floating: list[Edge] = []
    opaque = {n for n, k in graph.roots.items() if k == "opaque"}
    for e in graph.edges:
        by_parent.setdefault(e.parent, []).append(e)
        if e.parent in opaque:
            floating.append(e)
    seed_nodes = [n for n, k in graph.roots.items() if k == "seed"]

    def match_edges(cands: set, label, salt) -> set:
        matched = set()
        pools = [(c, by_parent.get(c, [])) for c in cands]
        pools.append(("<float>", floating))
        for cand, edges in pools:
            for e in edges:
                ok = (e.kind == "dynamic"
                      or (label is not None and e.kind == "label"
                          and e.arg == label)
                      or (label is None and salt is not None
                          and e.effective_salt() == salt))
                if ok:
                    base = e.parent if cand == "<float>" else cand
                    matched.add(f"{base}/{e.name}" if cand != "<float>"
                                else e.child)
        return matched

    findings = []
    mapping: dict[str, set] = {}
    children: dict[str, list[str]] = {}
    roots = []
    for sid, obj in streams.items():
        if obj.get("parent"):
            children.setdefault(obj["parent"], []).append(sid)
        else:
            roots.append(sid)
    for sid in sorted(roots):
        mapping[sid] = set(seed_nodes)
    queue = sorted(roots)
    visited = set()
    while queue:
        cur = queue.pop(0)
        if cur in visited:
            continue
        visited.add(cur)
        for child in sorted(children.get(cur, [])):
            obj = streams[child]
            label = obj.get("label")
            salt = int(obj["salt"], 16) if obj.get("salt") else None
            cands = match_edges(mapping.get(cur, set()), label, salt)
            if not cands:
                what = (f'label "{label}"' if label is not None
                        else f"salt {obj.get('salt')}")
                findings.append(Finding(
                    trace_path, obj["_line"], "trace-unknown-edge",
                    f"runtime fork edge ({what}) of stream {child} has "
                    "no matching edge in the static fork graph: an "
                    "unregistered fork site is live"))
            mapping[child] = cands
            queue.append(child)
    return findings


def check_trace_pair(a_path: str, a: dict, b_path: str,
                     b: dict) -> list[Finding]:
    findings = []
    for sid in sorted(set(a) | set(b)):
        ra, rb = a.get(sid), b.get(sid)
        if ra is None or rb is None:
            present, absent = (a_path, b_path) if rb is None \
                else (b_path, a_path)
            rec = ra or rb
            findings.append(Finding(
                absent, 1, "trace-draw-mismatch",
                f"stream {sid} (label {rec.get('label')}) exists in "
                f"{present} but not here: the set of live streams "
                "depends on the jobs value"))
        elif ra["draws"] != rb["draws"]:
            findings.append(Finding(
                b_path, rb["_line"], "trace-draw-mismatch",
                f"stream {sid} (label {rb.get('label')}) drew "
                f"{ra['draws']} times in {a_path} but {rb['draws']} "
                "here: per-stream draw counts must not depend on the "
                "jobs value"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def gather_files(root: str) -> list[str]:
    files = []
    base = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = [d for d in dirnames if not d.startswith("build")]
        for name in sorted(filenames):
            if name.endswith(CPP_EXTENSIONS):
                files.append(os.path.join(dirpath, name))
    return sorted(files)


def apply_allows(findings: list[Finding],
                 models: list[FileModel]) -> list[Finding]:
    allows = {fm.relpath: fm.allows for fm in models}
    return [f for f in findings
            if f.rule not in allows.get(f.path, {}).get(f.line, set())]


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root to analyze (default: repo "
                        "containing this script)")
    parser.add_argument("--graph", default=None,
                        help="pinned fork-graph manifest (default: "
                        "<root>/tools/rng_graph.json)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format")
    parser.add_argument("--fix-graph", action="store_true",
                        help="rewrite the pinned manifest from the "
                        "current sources")
    parser.add_argument("--dot", action="store_true",
                        help="print the fork graph as Graphviz DOT and "
                        "exit")
    parser.add_argument("--check-trace", nargs="+", metavar="TRACE",
                        help="validate runtime audit JSONL trace(s) "
                        "against the static graph; with two traces also "
                        "compare per-stream draw counts")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:20s} {desc}")
        return 0

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"wheels-rng: no src/ under {root}", file=sys.stderr)
        return 2
    graph_path = os.path.abspath(
        args.graph or os.path.join(root, "tools", "rng_graph.json"))
    rel_graph = os.path.relpath(graph_path, root).replace(os.sep, "/")

    files = gather_files(root)
    models = [extract_file(p, root) for p in files]
    graph = build_graph(models)

    if args.dot:
        print(render_dot(graph))
        return 0
    if args.fix_graph:
        write_graph(graph, graph_path)
        print(f"wheels-rng: wrote {rel_graph} "
              f"({len(canonical_edges(graph))} edges, "
              f"{len(graph.roots)} roots)")
        return 0

    findings: list[Finding] = []
    if args.check_trace:
        for tp in args.check_trace:
            if not os.path.exists(tp):
                print(f"wheels-rng: trace not found: {tp}",
                      file=sys.stderr)
                return 2
        traces = []
        for tp in args.check_trace:
            streams, tf = load_trace(tp)
            findings += tf
            findings += check_trace_against_graph(graph, streams, tp)
            traces.append((tp, streams))
        for (ap, a), (bp, b) in zip(traces, traces[1:]):
            findings += check_trace_pair(ap, a, bp, b)
    else:
        findings += check_unlabeled_fork(graph)
        findings += check_fork_collision(graph)
        findings += check_rng_by_value(models)
        findings += check_member_copy(models)
        findings += check_draw_in_unordered(models)
        findings = apply_allows(findings, models)
        findings += check_graph_drift(graph, graph_path, rel_graph)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if args.output_format == "sarif":
        print(sarif.render_sarif("wheels-rng", RULES, findings))
        return 1 if findings else 0
    if args.output_format == "json":
        print(json.dumps(
            {
                "tool": "wheels-rng",
                "files_scanned": len(files),
                "edges": len(canonical_edges(graph)),
                "findings": [
                    {"rule": f.rule, "path": f.path, "line": f.line,
                     "message": f.message} for f in findings
                ],
            },
            indent=2, sort_keys=True))
        return 1 if findings else 0

    for f in findings:
        print(f.render())
    if findings:
        print(f"wheels-rng: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)")
        return 1
    mode = "trace check" if args.check_trace else "static check"
    print(f"wheels-rng: OK ({mode}: {len(files)} files, "
          f"{len(canonical_edges(graph))} fork edges)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
