#!/usr/bin/env python3
"""Validate a Chrome trace_event file emitted by the obs subsystem.

Checks, in order:
  * the file parses as JSON and carries a `traceEvents` list;
  * every event is a complete ("X") span with the fields the obs exporter
    promises (name, cat, pid, tid, ts, dur), with integer, non-negative
    timestamps;
  * per (pid, tid) lane, spans nest monotonically: any two spans on one
    lane are either disjoint or one properly contains the other. A partial
    overlap means a span closed on a different thread than it opened on,
    or the clock went backwards -- both exporter bugs;
  * each --require-span PREFIX (repeatable) matches at least one event
    name, so CI can assert the instrumentation actually covered the
    phases it claims to (record, per-operator replay, baseline fan-out,
    dataset cache operations). --contracts REGISTRY.json loads the
    `required_span_prefixes` list from the contract registry
    (tools/contracts.json) instead of, or in addition to, spelling each
    prefix on the command line -- CI uses this so the prefixes the trace
    gate requires are the ones wheels_contract.py pins to the code.

Usage: tools/validate_trace.py TRACE.json [--require-span PREFIX]...
                                          [--contracts REGISTRY.json]

Exits 0 when the trace is valid, 1 when any check fails, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_FIELDS = ("name", "cat", "ph", "pid", "tid", "ts", "dur")


def fail(msg: str) -> int:
    print(f"validate-trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="PREFIX",
        help="require at least one span whose name starts with PREFIX "
        "(repeatable)")
    parser.add_argument(
        "--contracts",
        metavar="REGISTRY",
        help="also require every prefix in REGISTRY's "
        "required_span_prefixes list (tools/contracts.json)")
    args = parser.parse_args(argv)

    if args.contracts:
        try:
            with open(args.contracts, encoding="utf-8") as f:
                registry = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"validate-trace: cannot load contract registry "
                  f"{args.contracts}: {e}", file=sys.stderr)
            return 2
        prefixes = registry.get("required_span_prefixes")
        if not isinstance(prefixes, list) or not all(
                isinstance(p, str) for p in prefixes):
            print(f"validate-trace: {args.contracts} has no "
                  "required_span_prefixes string list", file=sys.stderr)
            return 2
        args.require_span.extend(
            p for p in prefixes if p not in args.require_span)

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]

    lanes: dict[tuple[int, int], list[tuple[int, int, str]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"traceEvents[{i}] is not an object")
        missing = [k for k in REQUIRED_FIELDS if k not in ev]
        if missing:
            return fail(f"traceEvents[{i}] is missing {', '.join(missing)}")
        if ev["ph"] != "X":
            return fail(
                f"traceEvents[{i}] has ph={ev['ph']!r}; the obs exporter "
                "only writes complete ('X') spans")
        for k in ("pid", "tid", "ts", "dur"):
            if not isinstance(ev[k], int) or isinstance(ev[k], bool):
                return fail(f"traceEvents[{i}].{k} is not an integer")
            if ev[k] < 0:
                return fail(f"traceEvents[{i}].{k} is negative")
        if not isinstance(ev["name"], str) or not ev["name"]:
            return fail(f"traceEvents[{i}].name is not a non-empty string")
        lanes.setdefault((ev["pid"], ev["tid"]), []).append(
            (ev["ts"], ev["ts"] + ev["dur"], ev["name"]))

    for (pid, tid), spans in sorted(lanes.items()):
        # Sort by start, widest first, then sweep with a containment
        # stack: every span must fit inside the innermost open span that
        # it starts within.
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[int, int, str]] = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                return fail(
                    f"lane pid={pid} tid={tid}: span {name!r} "
                    f"[{start}, {end}) partially overlaps "
                    f"{stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}); "
                    "spans on one lane must nest")
            stack.append((start, end, name))

    names = [ev["name"] for ev in events]
    for prefix in args.require_span:
        if not any(n.startswith(prefix) for n in names):
            return fail(
                f"no span named {prefix}*; expected the instrumentation "
                "to cover this phase")

    print(f"validate-trace: OK ({len(events)} span(s), "
          f"{len(lanes)} lane(s), {len(args.require_span)} required "
          "prefix(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
