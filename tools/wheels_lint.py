#!/usr/bin/env python3
"""wheels-lint: repo-specific determinism and hygiene linter.

The reproduction's whole value is bit-for-bit regenerable figures: every
stochastic process forks from the campaign Rng, and every timestamp derives
from SimClock. No off-the-shelf checker knows that contract, so this tool
enforces it mechanically:

  banned-random     std::rand / time(nullptr) / std::random_device /
                    std::mt19937 / std::chrono::system_clock anywhere except
                    src/core/rng.* and src/core/sim_time.* (the two blessed
                    wrappers). Ambient entropy or wall clocks anywhere else
                    silently break regeneration.
  float-eq          direct ==/!= against floating-point literals in
                    src/analysis/ and src/radio/. Derived doubles must be
                    compared through approx_equal()/approx_zero() from
                    core/stats.h; bit-exact matches are latent porting bugs.
  unordered-iter    range-for iteration over a std::unordered_* container.
                    Iteration order is hash-seed and libstdc++-version
                    dependent, so anything it feeds (output tables, summed
                    floats) is nondeterministic. Iterate a sorted view or use
                    std::map.
  duplicate-fork    the same string-literal fork label used twice on the
                    same parent Rng in one scope. fork(label) is a pure
                    function of (parent state, label), so duplicated labels
                    yield bit-identical streams and silently correlate
                    processes that were meant to be independent.
  static-local      function-local `static` variables in src/ that are not
                    const/constexpr/constinit. Mutable magic statics are
                    lazily initialised on first use, which races when the
                    parallel campaign engine touches a module from several
                    workers at once; hoist to a namespace-scope constinit
                    object or pass explicit state instead.
  steady-clock      std::chrono::steady_clock::now() (or any
                    high_resolution_clock use) in src/ outside src/obs/.
                    Wall-clock measurement must flow through obs::now_ns()
                    (src/obs/clock.h) so tests can swap the source and so
                    timing never leaks into simulation output.
  pragma-once       every header must start its include guard with
                    #pragma once.
  include-hygiene   quoted includes in src/ must be module-qualified
                    ("core/rng.h", not "rng.h") so a file never silently
                    picks up a same-named header from its own directory.
  relative-include  parent-relative quoted includes (`#include "../..."`)
                    in src/. They bypass the module-qualified form the
                    layer manifest (tools/layers.json) keys on, so
                    wheels_arch.py could no longer attribute the edge to
                    a module; always spell the module name.
  fp-reassoc        floating-point reassociation hazards in src/:
                    std::reduce / std::transform_reduce (unspecified
                    summation order), fast-math / float_control /
                    FP_CONTRACT pragmas and attributes (contraction and
                    reassociation licenses), and std::accumulate over an
                    unordered container (hash-order summation). Addition
                    of doubles is not associative; any of these moves the
                    golden checksum between compilers, so the SIMD replay
                    rework must keep reductions ordered.
  format            clang-format --dry-run check (skipped with a notice when
                    clang-format is not installed).

Suppress a finding by putting `// wheels-lint: allow(<rule>)` on the same
line or the line directly above it.

Usage:
  tools/wheels_lint.py [--root DIR] [--no-format]
                       [--format text|json|sarif] [--list-rules]

With --format=json, stdout carries a single JSON object
({"tool", "files_scanned", "findings": [{rule, path, line, message}]})
so CI can diff gate output structurally; notices go to stderr.
--format=sarif emits the same findings as SARIF 2.1.0 (tools/sarif.py)
for code-scanning ingestion.

Exits 0 when clean, 1 when any finding fires, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sarif  # noqa: E402  (sibling module, shared with the other tools)

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
CPP_EXTENSIONS = (".cpp", ".h", ".hpp", ".cc")
SKIP_DIR_PARTS = ("build", "lint_fixtures", "fixtures")

# Files allowed to touch raw entropy / wall-clock primitives.
BANNED_RANDOM_ALLOWLIST = (
    "src/core/rng.h",
    "src/core/rng.cpp",
    "src/core/sim_time.h",
    "src/core/sim_time.cpp",
)

BANNED_RANDOM_TOKENS = (
    (re.compile(r"\bstd\s*::\s*rand\b"), "std::rand"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"\bstd\s*::\s*mt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bstd\s*::\s*minstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bstd\s*::\s*default_random_engine\b"),
     "std::default_random_engine"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*system_clock\b"),
     "std::chrono::system_clock"),
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*high_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
)

FLOAT_EQ_DIRS = ("src/analysis/", "src/radio/")
FLOAT_LITERAL = r"[0-9]+\.[0-9]*(?:[eE][+-]?[0-9]+)?[fF]?|\.[0-9]+(?:[eE][+-]?[0-9]+)?[fF]?|[0-9]+[eE][+-]?[0-9]+[fF]?"
FLOAT_EQ_RE = re.compile(
    r"(?<![<>=!&|+\-*/%^])(?:==|!=)\s*[+-]?(?:{lit})(?![\w.])"
    r"|(?:{lit})\s*(?:==|!=)(?![=])".format(lit=FLOAT_LITERAL))

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*([^)]+)\)")

PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)

# `recv.fork("label")` / `recv->fork(7)` with a string-literal label or
# an integer-literal salt. Chained calls (`rng.fork(a).fork("b")`) and
# computed arguments (`rng.fork(city.name)`) deliberately do not match:
# only textually provable (receiver, literal) pairs are duplicates here;
# cross-scope and cross-TU collisions (including alias chains) are
# wheels_rng.py's fork-collision rule.
FORK_RE = re.compile(
    r"(?P<recv>\b\w+(?:(?:\.|->)\w+)*)\s*(?:\.|->)\s*fork\s*\(\s*"
    r'(?:"(?P<label>[^"]*)"'
    r"|(?P<salt>(?:0[xX][0-9a-fA-F']+|\d[\d']*)[uUlL]*))\s*\)")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)

ALLOW_RE = re.compile(r"//\s*wheels-lint:\s*allow\(([a-z\-, ]+)\)")

RULES = {
    "banned-random":
        "ambient entropy / wall-clock source outside core/rng, core/sim_time",
    "float-eq":
        "direct floating-point ==/!= in analysis or radio layers",
    "unordered-iter":
        "iteration over unordered container (nondeterministic order)",
    "duplicate-fork":
        "same literal rng fork label or integer salt twice on one parent "
        "in a scope (lexical check; whole-program collisions are "
        "wheels_rng.py fork-collision)",
    "static-local":
        "mutable function-local static in src/ (init races under the "
        "parallel campaign engine)",
    "steady-clock":
        "host monotonic clock read in src/ outside src/obs/ (use "
        "obs::now_ns())",
    "pragma-once":
        "header missing #pragma once",
    "include-hygiene":
        "quoted include is not module-qualified repo-relative",
    "relative-include":
        "parent-relative #include \"../...\" in src/ (defeats the layer "
        "manifest)",
    "fp-reassoc":
        "floating-point reassociation hazard in src/ (std::reduce, "
        "fast-math/FP_CONTRACT pragmas, accumulation over unordered "
        "containers)",
    "format":
        "clang-format --dry-run reported a diff",
}


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


DIGIT_SEP_RE = re.compile(r"(\d)'([\da-fA-F])")


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blank out comments, string and char literals, preserving line
    structure so reported line numbers stay meaningful. With
    `keep_strings`, ordinary string literals survive (raw strings and char
    literals are still blanked) for rules that inspect literal contents.
    C++14 digit separators (1'000) are removed first: the apostrophe would
    otherwise read as a char-literal open and swallow source up to the
    next apostrophe (separators never span lines, so line numbers hold)."""
    prev = None
    while prev != text:
        prev = text
        text = DIGIT_SEP_RE.sub(r"\1\2", text)
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim"
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                end = text.find(f"){m.group(1)}\"", i + m.end())
                if end == -1:
                    end = n
                out.append("\n" * text.count("\n", i, end))
                i = end + len(m.group(1)) + 2
            else:
                out.append(c)
                i += 1
        elif c == '"':
            # Preserve the quoted path of an #include directive; blank out
            # every other string literal.
            line_start = text.rfind("\n", 0, i) + 1
            is_include = re.match(r'\s*#\s*include\s*$', text[line_start:i])
            start = i
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            if is_include or keep_strings:
                out.append(text[start:i])
        elif c == "'":
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_allows(raw_lines: list[str]) -> dict[int, set[str]]:
    """Line number (1-based) -> rules allowed there. An allow comment covers
    its own line and the next line (so it can sit above the finding)."""
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        allows.setdefault(idx, set()).update(rules)
        allows.setdefault(idx + 1, set()).update(rules)
    return allows


def rel(path: str, root: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def check_banned_random(relpath: str, lines: list[str]) -> list[Finding]:
    if relpath in BANNED_RANDOM_ALLOWLIST:
        return []
    findings = []
    for idx, line in enumerate(lines, start=1):
        for pattern, name in BANNED_RANDOM_TOKENS:
            if pattern.search(line):
                findings.append(
                    Finding(
                        relpath, idx, "banned-random",
                        f"{name} is banned: draw from the campaign Rng "
                        "(core/rng.h) or SimClock (core/sim_time.h) so runs "
                        "stay bit-for-bit reproducible"))
    return findings


def check_float_eq(relpath: str, lines: list[str]) -> list[Finding]:
    if not relpath.startswith(FLOAT_EQ_DIRS):
        return []
    findings = []
    for idx, line in enumerate(lines, start=1):
        if FLOAT_EQ_RE.search(line):
            findings.append(
                Finding(
                    relpath, idx, "float-eq",
                    "direct floating-point ==/!= comparison: use "
                    "approx_equal()/approx_zero() from core/stats.h"))
    return findings


UNORDERED_NAME_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
    r"[^;{}]*?>\s*&?\s*(\w+)\s*[;={(,)]")


def collect_unordered_names(lines: list[str]) -> set[str]:
    """Names declared (anywhere in this file) with an unordered container
    type. Textual, not type-aware -- good enough for this codebase, and
    false positives can be suppressed inline."""
    unordered_names: set[str] = set()
    for line in lines:
        if UNORDERED_DECL_RE.search(line):
            for m in UNORDERED_NAME_RE.finditer(line):
                unordered_names.add(m.group(1))
    return unordered_names


def check_unordered_iter(relpath: str, lines: list[str]) -> list[Finding]:
    unordered_names = collect_unordered_names(lines)
    findings = []
    for idx, line in enumerate(lines, start=1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        target = m.group(1).strip()
        base = re.split(r"[.\->\[(]", target)[-1] or target
        candidates = {target, target.split(".")[-1].strip(),
                      target.split("->")[-1].strip(), base.strip()}
        if candidates & unordered_names:
            findings.append(
                Finding(
                    relpath, idx, "unordered-iter",
                    f"range-for over unordered container '{target}': "
                    "iteration order is hash-dependent; copy to a sorted "
                    "vector or use std::map before feeding output"))
    return findings


def check_duplicate_fork(relpath: str, text: str) -> list[Finding]:
    """`text` has comments blanked but string literals preserved. Walks the
    file once, tracking brace scopes and skipping literals, and reports any
    (scope, receiver, label) triple seen more than once."""
    matches = {m.start(): m for m in FORK_RE.finditer(text)}
    if not matches:
        return []
    findings = []
    seen: dict[tuple[int, str, str], int] = {}
    stack = [0]
    next_scope = 1
    line = 1
    i, n = 0, len(text)
    while i < n:
        if i in matches:
            m = matches[i]
            if m.group("label") is not None:
                arg = ("s", m.group("label"))
                shown = f'label "{m.group("label")}"'
            else:
                # Key on the numeric value so 0x7 and 7 (and digit-
                # separated spellings) collide like the salts they are.
                value = int(
                    m.group("salt").replace("'", "").rstrip("uUlL"), 0)
                arg = ("i", value)
                shown = f"salt {m.group('salt')}"
            key = (stack[-1], m.group("recv"), arg)
            if key in seen:
                findings.append(
                    Finding(
                        relpath, line, "duplicate-fork",
                        f"fork {shown} already used on "
                        f"'{m.group('recv')}' in this scope (line "
                        f"{seen[key]}): identical salts fork bit-identical "
                        "streams, correlating randomness that was meant to "
                        "be independent"))
            else:
                seen[key] = line
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c == '"':
            # Skip the literal so its contents neither open scopes nor
            # start new matches.
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    line += 1
                i += 1
            i += 1
        elif c == "{":
            stack.append(next_scope)
            next_scope += 1
            i += 1
        elif c == "}":
            if len(stack) > 1:
                stack.pop()
            i += 1
        else:
            i += 1
    return findings


STEADY_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*(?:steady_clock\s*::\s*now\s*\(|"
    r"high_resolution_clock\b)")


def check_steady_clock(relpath: str, lines: list[str]) -> list[Finding]:
    """src/obs/clock.cpp is the one blessed reader of the host monotonic
    clock; every other src/ file must measure through obs::now_ns() so the
    timestamp source stays swappable in tests (set_clock_for_testing) and
    wall-clock time cannot leak into simulation output."""
    if not relpath.startswith("src/") or relpath.startswith("src/obs/"):
        return []
    findings = []
    for idx, line in enumerate(lines, start=1):
        if STEADY_CLOCK_RE.search(line):
            findings.append(
                Finding(
                    relpath, idx, "steady-clock",
                    "direct host monotonic clock read: call obs::now_ns() "
                    "(src/obs/clock.h) instead so tests can swap the "
                    "timestamp source and timing stays out of simulation "
                    "output"))
    return findings


FP_REDUCE_RE = re.compile(r"\bstd\s*::\s*(transform_reduce|reduce)\b")
# fast-math licenses live in pragmas, attributes and _Pragma strings, so
# this scans the keep_strings variant of the text.
FP_FASTMATH_RE = re.compile(
    r"-ffast-math|\bfast-math\b|\bfast_math\b|"
    r"#\s*pragma\s+float_control\b|\bfloat_control\s*\(|"
    r"#\s*pragma\s+STDC\s+FP_CONTRACT\b|\bFP_CONTRACT\b")
FP_ACCUM_RE = re.compile(
    r"\bstd\s*::\s*accumulate\s*\(\s*([A-Za-z_]\w*)")


def check_fp_reassoc(relpath: str, lines: list[str],
                     lines_with_strings: list[str]) -> list[Finding]:
    """Floating-point addition is not associative: any construct that lets
    the compiler or library reassociate a reduction moves the golden
    checksum between toolchains. src/ must keep every accumulation in a
    specified order -- the guard rail the SIMD replay rework needs."""
    if not relpath.startswith("src/"):
        return []
    findings = []
    unordered_names = collect_unordered_names(lines)
    for idx, line in enumerate(lines, start=1):
        m = FP_REDUCE_RE.search(line)
        if m:
            findings.append(
                Finding(
                    relpath, idx, "fp-reassoc",
                    f"std::{m.group(1)} reduces in unspecified order, so "
                    "floating-point sums reassociate; use std::accumulate "
                    "(or an explicit loop) over an ordered range"))
        m = FP_ACCUM_RE.search(line)
        if m and m.group(1) in unordered_names:
            findings.append(
                Finding(
                    relpath, idx, "fp-reassoc",
                    f"std::accumulate over unordered container "
                    f"'{m.group(1)}': hash-order summation reassociates "
                    "floating-point addition; accumulate over a sorted "
                    "view instead"))
    for idx, line in enumerate(lines_with_strings, start=1):
        if FP_FASTMATH_RE.search(line):
            findings.append(
                Finding(
                    relpath, idx, "fp-reassoc",
                    "fast-math / FP contraction license: this permits the "
                    "compiler to reassociate and contract floating-point "
                    "math, breaking the bit-reproducibility the golden "
                    "checksum pins"))
    return findings


STATIC_RE = re.compile(r"\bstatic\b")
SCOPE_TYPE_RE = re.compile(r"\b(class|struct|union|enum|namespace)\b")
STATIC_EXEMPT_RE = re.compile(r"\b(const|constexpr|constinit)\b")


def check_static_local(relpath: str, text: str) -> list[Finding]:
    """`text` has comments and strings blanked. Walks brace scopes and
    classifies each opener as type/namespace scope, function scope, or a
    brace-init list (which inherits its parent); a `static` at function
    scope without const/constexpr/constinit is a mutable magic static."""
    if not relpath.startswith("src/"):
        return []
    matches = {m.start(): m for m in STATIC_RE.finditer(text)}
    if not matches:
        return []
    findings = []
    stack: list[str] = []  # resolved scope kinds: "type" | "func" | "other"
    chunk_start = 0  # start of the text chunk heading the next `{`
    line = 1
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if i in matches and (stack and stack[-1] == "func"):
            m = matches[i]
            # The declaration runs from the keyword to the first token that
            # ends the declarator head; qualifiers always precede it.
            stop = len(text)
            for term in (";", "=", "{", "("):
                pos = text.find(term, m.end())
                if pos != -1:
                    stop = min(stop, pos)
            if not STATIC_EXEMPT_RE.search(text[m.end():stop]):
                findings.append(
                    Finding(
                        relpath, line, "static-local",
                        "mutable function-local static: first-use "
                        "initialisation races once the parallel campaign "
                        "engine calls this from worker threads; hoist to a "
                        "namespace-scope constinit/constexpr object or pass "
                        "the state explicitly"))
        if c == "\n":
            line += 1
        elif c == ";":
            chunk_start = i + 1
        elif c == "{":
            header = text[chunk_start:i]
            if SCOPE_TYPE_RE.search(header):
                kind = "type"
            elif re.search(r"[=,(\[{]\s*$", header.rstrip()) or not header.strip():
                # Brace-init list (or a bare block): inherit the parent.
                kind = stack[-1] if stack else "other"
            elif ")" in header:
                # Function body, lambda, or a control statement -- all of
                # which are (inside) function scope.
                kind = "func"
            else:
                kind = stack[-1] if stack else "other"
            stack.append(kind)
            chunk_start = i + 1
        elif c == "}":
            if stack:
                stack.pop()
            chunk_start = i + 1
        i += 1
    return findings


def check_pragma_once(relpath: str, text: str) -> list[Finding]:
    if not relpath.endswith((".h", ".hpp")):
        return []
    if PRAGMA_ONCE_RE.search(text):
        return []
    return [
        Finding(relpath, 1, "pragma-once",
                "header is missing #pragma once")
    ]


def check_include_hygiene(relpath: str, text: str,
                          module_dirs: set[str]) -> list[Finding]:
    if not relpath.startswith("src/"):
        return []
    findings = []
    for m in INCLUDE_RE.finditer(text):
        inc = m.group(1)
        line = text.count("\n", 0, m.start()) + 1
        if ".." in inc.split("/"):
            continue  # relative-include owns parent-relative paths
        if "/" not in inc:
            findings.append(
                Finding(
                    relpath, line, "include-hygiene",
                    f'include "{inc}" is not module-qualified; write '
                    f'"{relpath.split("/")[1]}/{inc}" so the header resolves '
                    "identically from every translation unit"))
        elif module_dirs and inc.split("/")[0] not in module_dirs:
            findings.append(
                Finding(
                    relpath, line, "include-hygiene",
                    f'include "{inc}" does not name a known src module '
                    f"({', '.join(sorted(module_dirs))})"))
    return findings


def check_relative_include(relpath: str, text: str) -> list[Finding]:
    """Parent-relative includes resolve correctly today but erase the
    module name the layer manifest keys on — `"../core/rng.h"` from
    src/trip/ is an untracked trip->core edge as far as wheels_arch.py
    can tell. Ban them outright in src/."""
    if not relpath.startswith("src/"):
        return []
    findings = []
    for m in INCLUDE_RE.finditer(text):
        inc = m.group(1)
        if ".." not in inc.split("/"):
            continue
        line = text.count("\n", 0, m.start()) + 1
        findings.append(
            Finding(
                relpath, line, "relative-include",
                f'include "{inc}" is parent-relative; spell the '
                'module-qualified form ("<module>/<header>.h") so '
                "wheels_arch.py can attribute the edge to a module"))
    return findings


def check_format(root: str, files: list[str]) -> tuple[list[Finding], bool]:
    """Returns (findings, ran). Skips gracefully when clang-format or the
    .clang-format config is unavailable."""
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        return [], False
    if not os.path.exists(os.path.join(root, ".clang-format")):
        return [], False
    findings = []
    for path in files:
        proc = subprocess.run(
            [clang_format, "--dry-run", "-Werror", "--style=file", path],
            capture_output=True,
            text=True,
            cwd=root,
            check=False)
        if proc.returncode != 0:
            first = (proc.stderr.strip().splitlines() or ["formatting diff"])[0]
            lm = re.search(r":(\d+):", first)
            findings.append(
                Finding(
                    rel(path, root), int(lm.group(1)) if lm else 1, "format",
                    "clang-format --dry-run reports a diff (run clang-format "
                    "-i to fix)"))
    return findings, True


def lint_file(path: str, root: str, module_dirs: set[str]) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    relpath = rel(path, root)
    allows = collect_allows(raw.splitlines())
    stripped = strip_comments_and_strings(raw)
    lines = stripped.splitlines()

    findings: list[Finding] = []
    findings += check_banned_random(relpath, lines)
    findings += check_float_eq(relpath, lines)
    findings += check_unordered_iter(relpath, lines)
    findings += check_duplicate_fork(
        relpath, strip_comments_and_strings(raw, keep_strings=True))
    findings += check_static_local(relpath, stripped)
    findings += check_steady_clock(relpath, lines)
    findings += check_fp_reassoc(
        relpath, lines,
        strip_comments_and_strings(raw, keep_strings=True).splitlines())
    findings += check_pragma_once(relpath, stripped)
    findings += check_include_hygiene(relpath, stripped, module_dirs)
    findings += check_relative_include(relpath, stripped)

    return [
        f for f in findings if f.rule not in allows.get(f.line, set())
    ]


def gather_files(root: str) -> list[str]:
    files = []
    for scan in SCAN_DIRS:
        base = os.path.join(root, scan)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [
                d for d in dirnames
                if d not in SKIP_DIR_PARTS and not d.startswith("build")
            ]
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root to lint (default: repo containing "
                        "this script)")
    parser.add_argument("--no-format", action="store_true",
                        help="skip the clang-format check")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="findings output format (default: text)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:16s} {desc}")
        return 0

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    src = os.path.join(root, "src")
    module_dirs = {
        d for d in (os.listdir(src) if os.path.isdir(src) else [])
        if os.path.isdir(os.path.join(src, d))
    }

    files = gather_files(root)
    if not files:
        print(f"wheels-lint: no C++ sources found under {root}",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in files:
        findings += lint_file(path, root, module_dirs)

    if not args.no_format:
        fmt_findings, ran = check_format(root, files)
        findings += fmt_findings
        if not ran:
            notice_out = sys.stderr if args.output_format != "text" \
                else sys.stdout
            print("wheels-lint: note: clang-format not available; "
                  "format check skipped", file=notice_out)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if args.output_format == "sarif":
        print(sarif.render_sarif("wheels-lint", RULES, findings))
        return 1 if findings else 0

    if args.output_format == "json":
        print(json.dumps(
            {
                "tool": "wheels-lint",
                "files_scanned": len(files),
                "findings": [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "message": f.message,
                    } for f in findings
                ],
            },
            indent=2,
            sort_keys=True))
        return 1 if findings else 0

    for f in findings:
        print(f.render())

    if findings:
        print(f"wheels-lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)")
        return 1
    print(f"wheels-lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
