// wheels_served: the long-running campaign query daemon.
//
// Keeps hot WDS1 datasets memory-resident in an LRU-bounded store and
// answers analysis queries (KPI percentiles, per-region slices, app QoE
// summaries) over the framed binary protocol of src/serve, on an AF_UNIX
// socket or a stdin/stdout pipe. Cache misses resolve through
// CampaignProvider with cross-request single-flight, so a thundering herd
// on one cold fingerprint simulates exactly once.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/runtime.h"
#include "serve/daemon.h"

namespace {

using namespace wheels;

int usage(std::ostream& os, int code) {
  os << "usage: wheels_served (--socket PATH | --stdio) [options]\n"
        "\n"
        "options:\n"
        "  --socket PATH      listen on an AF_UNIX stream socket at PATH\n"
        "  --stdio            serve one session on stdin/stdout instead\n"
        "  --dir DIR          dataset cache directory (default:\n"
        "                     WHEELS_DATASET_DIR or build/dataset-cache)\n"
        "  --jobs N           simulation worker threads (default:\n"
        "                     WHEELS_JOBS, else 1); any N produces\n"
        "                     byte-identical responses\n"
        "  --max-datasets N   resident dataset cap (default:\n"
        "                     WHEELS_SERVE_MAX_DATASETS, else 8)\n"
        "  --idle-ms N        per-connection idle/read timeout, 0 = off\n"
        "                     (default: WHEELS_SERVE_IDLE_MS, else 30000)\n"
        "  --max-frame N      max accepted frame body in bytes (default:\n"
        "                     WHEELS_SERVE_MAX_FRAME, else 1048576)\n"
        "  --verbose          per-session notes on stderr\n"
        "  --metrics PATH     write a JSON-lines metrics snapshot on exit\n"
        "                     (same as WHEELS_METRICS=PATH)\n"
        "  --trace PATH       write a Chrome trace_event file on exit\n"
        "                     (same as WHEELS_TRACE=PATH)\n";
  return code;
}

long parse_long_or_exit(const std::string& text, const char* opt) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || v < 0) {
    std::cerr << "wheels_served: invalid value '" << text << "' for " << opt
              << "\n";
    std::exit(2);
  }
  return v;
}

serve::Daemon* g_daemon = nullptr;

void on_signal(int) {
  // request_stop() is async-signal-safe: an atomic store + a pipe write.
  if (g_daemon != nullptr) g_daemon->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  serve::DaemonOptions opts;
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "wheels_served: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") return usage(std::cout, 0);
    if (arg == "--socket") {
      opts.socket_path = value();
    } else if (arg == "--stdio") {
      opts.stdio = true;
    } else if (arg == "--dir") {
      opts.router.store.provider.cache_dir = value();
    } else if (arg == "--jobs") {
      opts.router.store.provider.jobs =
          static_cast<int>(parse_long_or_exit(value(), "--jobs"));
    } else if (arg == "--max-datasets") {
      opts.router.store.max_datasets =
          static_cast<int>(parse_long_or_exit(value(), "--max-datasets"));
    } else if (arg == "--idle-ms") {
      opts.idle_timeout_ms =
          static_cast<int>(parse_long_or_exit(value(), "--idle-ms"));
    } else if (arg == "--max-frame") {
      opts.router.max_frame_bytes = parse_long_or_exit(value(), "--max-frame");
    } else if (arg == "--verbose") {
      opts.verbose = true;
      opts.router.store.provider.verbose = true;
    } else if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else {
      std::cerr << "wheels_served: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (opts.socket_path.empty() && !opts.stdio) {
    std::cerr << "wheels_served: need --socket PATH or --stdio\n";
    return usage(std::cerr, 2);
  }
  obs::init_from_env();
  if (!metrics_path.empty()) obs::set_metrics_export_path(metrics_path);
  if (!trace_path.empty()) obs::set_trace_export_path(trace_path);

  serve::Daemon daemon(opts);
  g_daemon = &daemon;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const int rc = daemon.run();
  g_daemon = nullptr;
  return rc;
}
