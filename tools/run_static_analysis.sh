#!/usr/bin/env bash
# CI entry point for the static-analysis & dynamic-checking gates.
#
# Stages (each independently skippable via env toggles, all default ON):
#   1. wheels-lint       determinism/hygiene linter + its own rule tests
#   2. wheels-arch       include-graph architecture analyzer (layer DAG,
#                        cycles, orphan headers) + its own rule tests
#   3. wheels-contract   cross-artifact determinism-pin analyzer
#                        (tools/contracts.json vs code, tests, docs, CI)
#                        + its own rule tests
#   4. wheels-rng        whole-program RNG fork-graph analyzer (collisions,
#                        by-value stream copies, pinned-graph drift) + its
#                        rule tests; outside --quick also generates the
#                        stride-64 campaign at jobs=1 and jobs=4 with the
#                        runtime audit armed and cross-checks both JSONL
#                        fork trees against the static graph
#   5. dataset CLI       wheels_campaign smoke (argument validation, info
#                        on an empty cache; no simulation)
#   6. scenario smoke    the scenario library loads (list-scenarios), one
#                        non-default scenario generates at a sparse
#                        stride, unknown scenario names are rejected
#   7. trace validation  stride-64 bench with WHEELS_TRACE into a fresh
#                        cache dir; the emitted Chrome trace must parse,
#                        nest monotonically per thread and cover the
#                        registry's required_span_prefixes
#                        (tools/validate_trace.py --contracts)
#   8. header selfcheck  one synthetic TU per src/**/*.h compiled under
#                        the werror flag set (header self-sufficiency)
#   9. werror build      expanded warning set promoted to errors
#  10. asan-ubsan build  full ctest suite under ASan+UBSan, zero reports
#  11. tsan-parallel     thread-pool + determinism tests with WHEELS_JOBS=4
#                        under ThreadSanitizer (the parallel replay path)
#  12. clang-tidy        only when clang-tidy is installed (optional
#                        stage); consumes build/compile_commands.json
#                        exported by the default preset so local and CI
#                        invocations analyze identical command lines
#  13. gcc-fanalyzer     only when the toolchain's g++ accepts -fanalyzer
#                        on C++ (optional stage); path-sensitive analysis
#                        over src/core/ with the default include dirs
#  14. replay-kernel     bench_replay_kernel A/B at a sparse stride: the
#                        batched and scalar replay paths must produce
#                        byte-identical datasets (the bench exits non-zero
#                        on divergence); timing JSON line on stderr
#
# Usage: tools/run_static_analysis.sh [--quick]
#   --quick     skip the sanitizer ctest runs (stages 10-11) and the
#               rng audit cross-check portion of stage 4
#
# Env toggles: WHEELS_CI_LINT=0, WHEELS_CI_ARCH=0, WHEELS_CI_CONTRACT=0,
#              WHEELS_CI_RNG=0, WHEELS_CI_DATASET=0, WHEELS_CI_SCENARIO=0,
#              WHEELS_CI_TRACE=0, WHEELS_CI_HEADERS=0, WHEELS_CI_WERROR=0,
#              WHEELS_CI_SANITIZE=0, WHEELS_CI_TSAN=0, WHEELS_CI_TIDY=0,
#              WHEELS_CI_FANALYZER=0, WHEELS_CI_KERNEL=0, WHEELS_CI_SERVE=0,
#              WHEELS_CI_JOBS=<n>
# Test hooks:  WHEELS_CI_LINT_ROOT=<dir> lints that tree instead of the
#              repo, WHEELS_CI_CONTRACT_ROOT=<dir> likewise for the
#              contract check, WHEELS_CI_RNG_ROOT=<dir> likewise for the
#              RNG provenance check (which then also skips the audit
#              cross-check; used by tests/test_ci_driver.py to inject
#              known failures without touching the real sources).
# The stage list, toggles and --quick membership are themselves pinned in
# tools/contracts.json; the ci-stage rule fails when this file and the
# registry disagree.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="${WHEELS_CI_JOBS:-$(nproc)}"
FAILURES=0

banner() { printf '\n=== %s ===\n' "$1"; }

# --- Stage 1: determinism linter -------------------------------------------
if [[ "${WHEELS_CI_LINT:-1}" == 1 ]]; then
  banner "wheels-lint: rule self-tests"
  python3 tests/test_lint_rules.py || FAILURES=$((FAILURES + 1))
  banner "wheels-lint: full repo"
  python3 tools/wheels_lint.py --root "${WHEELS_CI_LINT_ROOT:-$ROOT}" \
    || FAILURES=$((FAILURES + 1))
fi

# --- Stage 2: architecture analyzer ----------------------------------------
# Layer-DAG conformance against tools/layers.json, include-cycle freedom
# and orphan-header detection, preceded by the analyzer's fixture tests.
if [[ "${WHEELS_CI_ARCH:-1}" == 1 ]]; then
  banner "wheels-arch: rule self-tests"
  python3 tests/test_arch_rules.py || FAILURES=$((FAILURES + 1))
  banner "wheels-arch: full repo"
  python3 tools/wheels_arch.py --root "$ROOT" || FAILURES=$((FAILURES + 1))
fi

# --- Stage 3: contract analyzer --------------------------------------------
# Cross-checks the determinism-pin registry (tools/contracts.json) against
# every artifact that spells a pin: golden/schema literals, WHEELS_* env
# vars, obs name prefixes, CLI flags, ctest registration, the generated
# pins header and README tables, and this driver's own stage list.
if [[ "${WHEELS_CI_CONTRACT:-1}" == 1 ]]; then
  banner "wheels-contract: rule self-tests"
  python3 tests/test_contract_rules.py || FAILURES=$((FAILURES + 1))
  banner "wheels-contract: full repo"
  python3 tools/wheels_contract.py \
    --root "${WHEELS_CI_CONTRACT_ROOT:-$ROOT}" \
    || FAILURES=$((FAILURES + 1))
fi

# --- Stage 4: RNG provenance -------------------------------------------------
# Whole-program fork-graph rules (fork-collision, rng-by-value,
# draw-in-unordered, unlabeled-fork, fork-graph-drift against the pinned
# tools/rng_graph.json), preceded by the analyzer's fixture tests.
# Outside --quick, additionally generates the seed-42 stride-64 campaign
# twice (jobs=1 and jobs=4, cold caches) with the runtime audit armed and
# cross-checks both JSONL fork trees: every runtime edge must exist in
# the static graph, zero provenance conflicts, and per-stream draw counts
# must be identical across the two jobs values.
if [[ "${WHEELS_CI_RNG:-1}" == 1 ]]; then
  banner "wheels-rng: rule self-tests"
  python3 tests/test_rng_rules.py || FAILURES=$((FAILURES + 1))
  banner "wheels-rng: full repo"
  python3 tools/wheels_rng.py --root "${WHEELS_CI_RNG_ROOT:-$ROOT}" \
    || FAILURES=$((FAILURES + 1))
  if [[ "$QUICK" == 0 && -z "${WHEELS_CI_RNG_ROOT:-}" ]]; then
    banner "wheels-rng: runtime audit cross-check (jobs=1 vs jobs=4)"
    cmake --preset default >/dev/null
    if cmake --build --preset default -j "$JOBS" --target wheels_campaign; then
      CLI=build/tools/wheels_campaign
      RNG_DIR=build/ci-rng-audit
      rm -rf "$RNG_DIR" && mkdir -p "$RNG_DIR"
      RNG_OK=1
      for J in 1 4; do
        WHEELS_DATASET_DIR="$RNG_DIR/cache-$J" \
        WHEELS_RNG_AUDIT_OUT="$RNG_DIR/trace-$J.jsonl" \
          "$CLI" generate --stride 64 --jobs "$J" --skip-apps --skip-static \
          --dir "$RNG_DIR/cache-$J" >/dev/null || RNG_OK=0
      done
      if [[ "$RNG_OK" == 1 ]]; then
        python3 tools/wheels_rng.py --root "$ROOT" \
          --check-trace "$RNG_DIR/trace-1.jsonl" "$RNG_DIR/trace-4.jsonl" \
          || RNG_OK=0
      fi
      rm -rf "$RNG_DIR"
      if [[ "$RNG_OK" == 1 ]]; then
        echo "rng audit cross-check: OK"
      else
        echo "rng audit cross-check FAILED"
        FAILURES=$((FAILURES + 1))
      fi
    else
      FAILURES=$((FAILURES + 1))
    fi
  fi
fi

# --- Stage 5: dataset CLI smoke --------------------------------------------
# Builds wheels_campaign and checks the argument/exit-code contract without
# running a simulation: `info` on an empty cache succeeds, malformed input
# and unknown subcommands must exit non-zero.
if [[ "${WHEELS_CI_DATASET:-1}" == 1 ]]; then
  banner "wheels_campaign CLI smoke"
  cmake --preset default >/dev/null
  if cmake --build --preset default -j "$JOBS" --target wheels_campaign; then
    CLI=build/tools/wheels_campaign
    SMOKE_DIR=build/cli-smoke-cache
    rm -rf "$SMOKE_DIR" && mkdir -p "$SMOKE_DIR"
    CLI_OK=1
    "$CLI" --help >/dev/null || CLI_OK=0
    "$CLI" info --dir "$SMOKE_DIR" >/dev/null || CLI_OK=0
    if "$CLI" generate --stride abc --dir "$SMOKE_DIR" 2>/dev/null; then
      CLI_OK=0  # malformed stride must be rejected
    fi
    if "$CLI" bogus-subcommand 2>/dev/null; then
      CLI_OK=0  # unknown subcommand must be rejected
    fi
    rm -rf "$SMOKE_DIR"
    if [[ "$CLI_OK" == 1 ]]; then
      echo "wheels_campaign CLI: OK"
    else
      echo "wheels_campaign CLI smoke FAILED"
      FAILURES=$((FAILURES + 1))
    fi
  else
    FAILURES=$((FAILURES + 1))
  fi
fi

# --- Stage 6: scenario smoke -------------------------------------------------
# The declarative scenario library must stay loadable and runnable end to
# end: list-scenarios prints every built-in, and one non-default scenario
# generates into a scratch cache at a sparse stride (a real simulation,
# seconds-scale). Unknown scenario names must be rejected.
if [[ "${WHEELS_CI_SCENARIO:-1}" == 1 ]]; then
  banner "scenario smoke (list-scenarios + urban-loop generate)"
  cmake --preset default >/dev/null
  if cmake --build --preset default -j "$JOBS" --target wheels_campaign; then
    CLI=build/tools/wheels_campaign
    SCEN_DIR=build/ci-scenario-cache
    rm -rf "$SCEN_DIR" && mkdir -p "$SCEN_DIR"
    SCEN_OK=1
    "$CLI" list-scenarios >/dev/null || SCEN_OK=0
    "$CLI" generate --scenario urban-loop --stride 64 \
        --skip-apps --skip-static --dir "$SCEN_DIR" >/dev/null || SCEN_OK=0
    if "$CLI" generate --scenario no-such-scenario --dir "$SCEN_DIR" \
        2>/dev/null; then
      SCEN_OK=0  # unknown scenario names must be rejected
    fi
    rm -rf "$SCEN_DIR"
    if [[ "$SCEN_OK" == 1 ]]; then
      echo "scenario smoke: OK"
    else
      echo "scenario smoke FAILED"
      FAILURES=$((FAILURES + 1))
    fi
  else
    FAILURES=$((FAILURES + 1))
  fi
fi

# --- Stage 7: trace validation ---------------------------------------------
# Runs the stride-64 Fig.3 bench cold with WHEELS_TRACE armed and checks
# the exported Chrome trace_event file: parseable JSON, spans nest
# monotonically within each thread lane, and every phase the contract
# registry's required_span_prefixes names actually shows up. Catches
# exporter regressions that the unit tests' synthetic clocks cannot.
if [[ "${WHEELS_CI_TRACE:-1}" == 1 ]]; then
  banner "trace validation (stride-64 bench with WHEELS_TRACE)"
  cmake --preset default >/dev/null
  if cmake --build --preset default -j "$JOBS" \
      --target bench_fig3_static_vs_driving; then
    TRACE_DIR=build/ci-trace
    rm -rf "$TRACE_DIR" && mkdir -p "$TRACE_DIR"
    TRACE_OK=1
    WHEELS_DATASET_DIR="$TRACE_DIR/cache" \
    WHEELS_TRACE="$TRACE_DIR/trace.json" \
      ./build/bench/bench_fig3_static_vs_driving 64 >/dev/null \
      || TRACE_OK=0
    if [[ "$TRACE_OK" == 1 ]]; then
      python3 tools/validate_trace.py "$TRACE_DIR/trace.json" \
        --contracts tools/contracts.json \
        || TRACE_OK=0
    fi
    rm -rf "$TRACE_DIR"
    if [[ "$TRACE_OK" == 1 ]]; then
      echo "trace validation: OK"
    else
      echo "trace validation FAILED"
      FAILURES=$((FAILURES + 1))
    fi
  else
    FAILURES=$((FAILURES + 1))
  fi
fi

# --- Stage 8: header self-sufficiency --------------------------------------
# cmake/HeaderSelfCheck.cmake generates one `#include "<header>"` TU per
# public header; compiling the target proves every header stands alone
# under -Werror -Wconversion -Wshadow -Wdouble-promotion -Wold-style-cast.
if [[ "${WHEELS_CI_HEADERS:-1}" == 1 ]]; then
  banner "header self-sufficiency (header_selfcheck)"
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS" --target header_selfcheck \
    || FAILURES=$((FAILURES + 1))
fi

# --- Stage 9: warnings-as-errors build -------------------------------------
if [[ "${WHEELS_CI_WERROR:-1}" == 1 ]]; then
  banner "werror build (-Werror -Wconversion -Wshadow -Wdouble-promotion -Wold-style-cast)"
  cmake --preset werror >/dev/null
  cmake --build --preset werror -j "$JOBS" || FAILURES=$((FAILURES + 1))
fi

# --- Stage 10: sanitizer-clean test suite -----------------------------------
if [[ "$QUICK" == 0 && "${WHEELS_CI_SANITIZE:-1}" == 1 ]]; then
  banner "asan-ubsan build + ctest"
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j "$JOBS" || FAILURES=$((FAILURES + 1))
  # halt_on_error + exitcode make any report fail the suite; UBSan is
  # additionally built no-recover so it traps at the first finding.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:exitcode=99" \
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ctest --preset asan-ubsan || FAILURES=$((FAILURES + 1))
fi

# --- Stage 11: tsan over the parallel campaign path -------------------------
# The deterministic parallel engine's data-race gate: thread-pool unit
# tests plus the jobs=1 == jobs=4 determinism proofs, all with
# WHEELS_JOBS=4 (set by the tsan-parallel test preset) so every pool and
# replay worker actually spawns.
if [[ "$QUICK" == 0 && "${WHEELS_CI_TSAN:-1}" == 1 ]]; then
  banner "tsan-parallel build + ctest (WHEELS_JOBS=4)"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS" || FAILURES=$((FAILURES + 1))
  TSAN_OPTIONS="halt_on_error=1:exitcode=99" \
    ctest --preset tsan-parallel || FAILURES=$((FAILURES + 1))
fi

# --- Stage 12: clang-tidy (best effort: optional in the container) ----------
# Every preset exports CMAKE_EXPORT_COMPILE_COMMANDS, so clang-tidy reads
# the exact flags the build used; the file list comes from the database
# itself rather than an ad-hoc find.
if [[ "${WHEELS_CI_TIDY:-1}" == 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    banner "clang-tidy (compile_commands.json)"
    cmake --preset default >/dev/null
    if [[ -f build/compile_commands.json ]]; then
      mapfile -t TIDY_SRCS < <(python3 -c '
import json
entries = json.load(open("build/compile_commands.json"))
files = sorted({e["file"] for e in entries if "/src/" in e["file"]})
print("\n".join(files))
')
      clang-tidy -p build --quiet "${TIDY_SRCS[@]}" \
        || FAILURES=$((FAILURES + 1))
    else
      echo "build/compile_commands.json missing despite preset export" >&2
      FAILURES=$((FAILURES + 1))
    fi
  else
    echo "clang-tidy not installed; skipping (config: .clang-tidy)"
  fi
fi

# --- Stage 13: gcc -fanalyzer (best effort: support varies by toolchain) ----
# GCC's path-sensitive analyzer (-fanalyzer) is experimental for C++, so
# this stage first probes whether the installed g++ accepts it on a C++
# TU and skips with a notice when it does not. It runs over src/core/
# only: the deterministic substrate (rng, thread pool, event queue) is
# where a leak or null-deref found by symbolic execution would poison
# everything above it.
if [[ "${WHEELS_CI_FANALYZER:-1}" == 1 ]]; then
  if command -v g++ >/dev/null 2>&1 \
      && echo 'int main(){}' | g++ -x c++ -fanalyzer -c -o /dev/null - \
           >/dev/null 2>&1; then
    banner "gcc -fanalyzer (src/core)"
    FANALYZER_OK=1
    for f in src/core/*.cpp; do
      g++ -std=c++20 -fanalyzer -Isrc -c -o /dev/null "$f" \
        || FANALYZER_OK=0
    done
    if [[ "$FANALYZER_OK" == 1 ]]; then
      echo "gcc -fanalyzer: OK"
    else
      echo "gcc -fanalyzer FAILED"
      FAILURES=$((FAILURES + 1))
    fi
  else
    echo "g++ -fanalyzer unsupported on this toolchain; skipping"
  fi
fi

# --- Stage 14: replay-kernel bench smoke -------------------------------------
# One sparse-stride A/B of the batched replay kernel against the original
# scalar path. The bench itself enforces the equivalence contract (exit 1
# when the two datasets differ), so this doubles as a cheap end-to-end
# determinism gate; the JSON timing line lands in the CI log for trend
# spotting.
if [[ "${WHEELS_CI_KERNEL:-1}" == 1 ]]; then
  banner "replay-kernel bench smoke (scalar vs batched A/B)"
  cmake --preset default >/dev/null
  if cmake --build --preset default -j "$JOBS" --target bench_replay_kernel; then
    WHEELS_BENCH_JSON=1 ./build/bench/bench_replay_kernel 256 \
      || FAILURES=$((FAILURES + 1))
  else
    FAILURES=$((FAILURES + 1))
  fi
fi

# --- Stage 15: serve smoke ---------------------------------------------------
# End-to-end exercise of the campaign query daemon: wheels_served on a
# scratch socket, driven by the load generator's scripted schedule
# (malformed-frame probes, a cold miss, an 8-client herd on one cold
# fingerprint, a warm-cache hot phase). The loadgen exits non-zero unless
# the typed error responses arrive, single-flight simulated exactly once
# with every waiter joining, and all herd responses were byte-identical;
# the daemon must then shut down cleanly on request.
if [[ "${WHEELS_CI_SERVE:-1}" == 1 ]]; then
  banner "serve smoke (daemon + scripted loadgen)"
  cmake --preset default >/dev/null
  if cmake --build --preset default -j "$JOBS" --target wheels_served wheels_loadgen; then
    SERVE_DIR="build/ci-serve"
    rm -rf "$SERVE_DIR" && mkdir -p "$SERVE_DIR"
    SERVE_OK=1
    ./build/tools/wheels_served --socket "$SERVE_DIR/served.sock" \
      --dir "$SERVE_DIR/cache" &
    SERVED_PID=$!
    for _ in $(seq 1 100); do
      [[ -S "$SERVE_DIR/served.sock" ]] && break
      sleep 0.1
    done
    if [[ -S "$SERVE_DIR/served.sock" ]]; then
      ./build/tools/wheels_loadgen --socket "$SERVE_DIR/served.sock" \
        --scenario urban-loop --stride 64 --clients 8 --requests 10 \
        --probe --shutdown --out "$SERVE_DIR/bench.json" || SERVE_OK=0
      cat "$SERVE_DIR/bench.json" 2>/dev/null || true
    else
      echo "serve smoke: daemon socket never appeared" >&2
      SERVE_OK=0
      kill "$SERVED_PID" 2>/dev/null || true
    fi
    if ! wait "$SERVED_PID"; then
      echo "serve smoke: daemon did not shut down cleanly" >&2
      SERVE_OK=0
    fi
    rm -rf "$SERVE_DIR"
    [[ "$SERVE_OK" == 1 ]] || FAILURES=$((FAILURES + 1))
  else
    FAILURES=$((FAILURES + 1))
  fi
fi

banner "summary"
if [[ "$FAILURES" -gt 0 ]]; then
  echo "static analysis FAILED: $FAILURES stage(s) reported problems"
  exit 1
fi
echo "static analysis OK"
