# Header self-sufficiency gate.
#
# Emits one synthetic translation unit per public header under src/
# (each TU is just `#include "<module>/<header>.h"`) and compiles them
# all into an OBJECT library under the expanded werror flag set. A
# header that leans on its includer having pulled in a dependency first
# fails this build immediately, instead of rotting until some unlucky
# reordering of includes in a future TU exposes it.
#
# The target is part of ALL (the TUs are tiny, so the cost is noise) and
# also registered as the `header_selfcheck` ctest entry so the gate runs
# under the tier-1 suite. The werror flags are applied per-target rather
# than through WHEELS_WERROR so the gate stays strict even in default
# developer builds.

function(wheels_add_header_selfcheck)
  file(GLOB_RECURSE _wheels_public_headers CONFIGURE_DEPENDS
       ${CMAKE_SOURCE_DIR}/src/*.h ${CMAKE_SOURCE_DIR}/src/*.hpp)
  list(SORT _wheels_public_headers)

  set(_tu_dir ${CMAKE_BINARY_DIR}/header_selfcheck)
  set(_tus "")
  foreach(_hdr IN LISTS _wheels_public_headers)
    file(RELATIVE_PATH _rel ${CMAKE_SOURCE_DIR}/src ${_hdr})
    string(REPLACE "/" "_" _stem ${_rel})
    set(_tu ${_tu_dir}/check_${_stem}.cpp)
    set(_content "#include \"${_rel}\"  // self-sufficiency check\n")
    # Rewrite only on content change so incremental builds stay no-ops.
    if(EXISTS ${_tu})
      file(READ ${_tu} _existing)
    else()
      set(_existing "")
    endif()
    if(NOT _existing STREQUAL _content)
      file(WRITE ${_tu} ${_content})
    endif()
    list(APPEND _tus ${_tu})
  endforeach()

  add_library(header_selfcheck OBJECT ${_tus})
  target_include_directories(header_selfcheck PRIVATE ${CMAKE_SOURCE_DIR}/src)
  target_compile_options(header_selfcheck PRIVATE
    -Werror
    -Wconversion
    -Wshadow
    -Wdouble-promotion
    -Wold-style-cast)

  add_test(NAME header_selfcheck
           COMMAND ${CMAKE_COMMAND}
                   --build ${CMAKE_BINARY_DIR}
                   --target header_selfcheck)
  set_tests_properties(header_selfcheck PROPERTIES TIMEOUT 600)
endfunction()
