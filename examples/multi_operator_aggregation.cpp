// Multi-operator aggregation: the §8 recommendation, as a what-if. Runs
// the campaign, aligns the three operators' concurrent throughput samples,
// and shows what an MPTCP-style scheduler bonded across subscriptions
// would have delivered.
//
//   ./build/examples/multi_operator_aggregation [stride]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/stats.h"
#include "core/table.h"
#include "net/mptcp.h"
#include "dataset/provider.h"
#include "trip/campaign.h"

int main(int argc, char** argv) {
  using namespace wheels;

  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = argc > 1 ? std::max(1, std::atoi(argv[1])) : 12;
  std::cout << "Simulating three phones in one car (stride "
            << cfg.cycle_stride << ")...\n\n";

  dataset::CampaignProvider provider;
  const auto& res = provider.load_or_run(cfg);

  const auto& v = res.for_op(ran::OperatorId::Verizon).kpi;
  const auto& t = res.for_op(ran::OperatorId::TMobile).kpi;
  const auto& a = res.for_op(ran::OperatorId::ATT).kpi;
  const std::size_t n = std::min({v.size(), t.size(), a.size()});

  std::vector<std::vector<double>> series(3);
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i].test != trip::TestType::DownlinkBulk) continue;
    series[0].push_back(v[i].tput_mbps);
    series[1].push_back(t[i].tput_mbps);
    series[2].push_back(a[i].tput_mbps);
  }
  const auto agg = net::aggregate_series(series);

  std::vector<double> best, bonded;
  int dead_single = 0, dead_bonded = 0;
  for (const auto& r : agg) {
    best.push_back(r.best_single_mbps);
    bonded.push_back(r.realistic_mbps);
    if (r.best_single_mbps < 5.0) ++dead_single;
    if (r.realistic_mbps < 5.0) ++dead_bonded;
  }

  TextTable tab({"Downlink series", "p25", "med", "p75", "%<5 Mbps"});
  tab.add_row_values("best single operator",
                     {percentile(best, 25), percentile(best, 50),
                      percentile(best, 75),
                      best.empty()
                          ? 0.0
                          : 100.0 * dead_single /
                                static_cast<double>(best.size())},
                     1);
  tab.add_row_values("MPTCP across all three",
                     {percentile(bonded, 25), percentile(bonded, 50),
                      percentile(bonded, 75),
                      bonded.empty()
                          ? 0.0
                          : 100.0 * dead_bonded /
                                static_cast<double>(bonded.size())},
                     1);
  tab.print(std::cout);

  std::cout << "\nEven the *best* single subscription is below 5 Mbps "
            << fmt(100.0 * dead_single /
                       static_cast<double>(std::max<size_t>(1, best.size())),
                   1)
            << "% of the time; bonding all three cuts that to "
            << fmt(100.0 * dead_bonded /
                       static_cast<double>(std::max<size_t>(1, bonded.size())),
                   1)
            << "% -- operator outages are largely uncorrelated.\n";
  return 0;
}
