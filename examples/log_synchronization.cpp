// Log synchronization: a worked demonstration of the study's challenge
// [C2]. Generates app-layer logs (UTC or phone-local clocks), XCAL .drm
// files (local-time filenames, EDT contents), lets the timezone crossings
// scramble everything, then reconciles them with the logsync library.
#include <iostream>
#include <vector>

#include "core/rng.h"
#include "logsync/matcher.h"

int main() {
  using namespace wheels;
  using namespace wheels::logsync;

  // Three recording sessions on day 3: one in Mountain time, then the car
  // crosses into Central mid-afternoon.
  struct Session {
    double start_h_utc;
    double dur_h;
    TimeZone tz;
  };
  const std::vector<Session> sessions = {
      {2 * 24.0 + 14.0, 1.0, TimeZone::Mountain},
      {2 * 24.0 + 16.0, 1.5, TimeZone::Mountain},
      {2 * 24.0 + 19.0, 1.0, TimeZone::Central},  // crossed the border
  };

  std::vector<XcalFile> xcal;
  std::cout << "XCAL recordings (filename is LOCAL time, contents EDT):\n";
  for (const auto& s : sessions) {
    XcalFile f;
    f.content_start = SimTime{s.start_h_utc * 3600e3};
    f.content_end = SimTime{(s.start_h_utc + s.dur_h) * 3600e3};
    f.filename = xcal_filename("Verizon", f.content_start, s.tz);
    std::cout << "  " << f.filename << "  (contents stamped "
              << format_timestamp(f.content_start,
                                  {ClockKind::FixedEdt, {}})
              << " EDT)\n";
    xcal.push_back(f);
  }

  // An AR app log with phone-local timestamps, recorded during session 3.
  AppLogFile ar_log;
  ar_log.name = "ar_run_0042.log";
  ar_log.clock = {ClockKind::Local, TimeZone::Central};
  ar_log.first_record = format_timestamp(
      SimTime{(2 * 24.0 + 19.2) * 3600e3}, ar_log.clock);
  ar_log.last_record = format_timestamp(
      SimTime{(2 * 24.0 + 19.3) * 3600e3}, ar_log.clock);

  // A server log for the same run, in UTC.
  AppLogFile server_log;
  server_log.name = "edge_server.log";
  server_log.clock = {ClockKind::Utc, {}};
  server_log.first_record = format_timestamp(
      SimTime{(2 * 24.0 + 19.2) * 3600e3}, server_log.clock);
  server_log.last_record = format_timestamp(
      SimTime{(2 * 24.0 + 19.3) * 3600e3}, server_log.clock);

  std::cout << "\nApp logs of the same run, different clocks:\n"
            << "  " << ar_log.name << ":     " << ar_log.first_record
            << " (phone local, Central)\n"
            << "  " << server_log.name << ": "
            << server_log.first_record << " (UTC)\n";

  for (const auto* log : {&ar_log, &server_log}) {
    const auto idx = match_app_log(*log, xcal);
    std::cout << "\n" << log->name << " -> ";
    if (idx) {
      std::cout << "matched to " << xcal[*idx].filename;
    } else {
      std::cout << "NO MATCH";
    }
  }

  // Naive matching (treating local stamps as EDT) picks the wrong file.
  AppLogFile naive = ar_log;
  naive.clock = {ClockKind::FixedEdt, {}};
  const auto wrong = match_app_log(naive, xcal);
  std::cout << "\n\nNaive match (local misread as EDT) -> "
            << (wrong ? xcal[*wrong].filename : std::string("NO MATCH"))
            << "  <- one hour off, lands in the wrong recording\n";

  // Timeline alignment: 500 ms XCAL samples vs 1 s app samples.
  std::vector<SimTime> xcal_t, app_t;
  const double base = (2 * 24.0 + 19.2) * 3600e3;
  for (int i = 0; i < 20; ++i) xcal_t.push_back(SimTime{base + i * 500.0});
  for (int i = 0; i < 10; ++i) {
    app_t.push_back(SimTime{base + 40.0 + i * 1'000.0});
  }
  const auto align = align_timelines(app_t, xcal_t, Millis{250.0});
  int matched = 0;
  for (long j : align) {
    if (j >= 0) ++matched;
  }
  std::cout << "\nTimeline alignment: " << matched << "/" << align.size()
            << " app samples matched to the nearest XCAL sample within "
               "250 ms.\n";
  return 0;
}
