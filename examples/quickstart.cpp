// Quickstart: run a reduced-duty measurement campaign along the LA->Boston
// route and print the headline numbers -- technology coverage and driving
// throughput/RTT medians per operator.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [stride]
//
// `stride` (default 10) runs every stride-th test cycle; 1 reproduces the
// full 8-day campaign.
#include <cstdlib>
#include <iostream>

#include "analysis/coverage.h"
#include "analysis/performance.h"
#include "core/stats.h"
#include "core/table.h"
#include "dataset/provider.h"
#include "trip/campaign.h"

int main(int argc, char** argv) {
  using namespace wheels;

  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = argc > 1 ? std::atoi(argv[1]) : 10;
  if (cfg.cycle_stride < 1) cfg.cycle_stride = 1;

  std::cout << "Driving LA -> Boston (stride " << cfg.cycle_stride
            << ")...\n";
  dataset::CampaignProvider provider;
  const auto& res = provider.load_or_run(cfg);
  std::cout << "Route: " << res.route_length.kilometers() << " km over "
            << res.days << " days ("
            << res.drive_time.minutes() / 60.0 << " h driving)\n\n";

  TextTable cov({"Operator", "LTE", "LTE-A", "5G-low", "5G-mid", "5G-mmW",
                 "no-svc", "5G total", "HS-5G"});
  TextTable perf({"Operator", "DL med", "DL p75", "UL med", "UL p75",
                  "RTT med", "<5 Mbps DL"});
  for (const auto& log : res.logs) {
    const auto shares = analysis::coverage_from_kpi(log.kpi);
    cov.add_row_values(
        std::string(to_string(log.op)),
        {100 * shares.tech(radio::Tech::LTE),
         100 * shares.tech(radio::Tech::LTE_A),
         100 * shares.tech(radio::Tech::NR_LOW),
         100 * shares.tech(radio::Tech::NR_MID),
         100 * shares.tech(radio::Tech::NR_MMWAVE),
         100 * shares.no_service(), 100 * shares.total_5g(),
         100 * shares.high_speed_5g()},
        1);

    analysis::PerfFilter dl{};
    dl.test = trip::TestType::DownlinkBulk;
    analysis::PerfFilter ul{};
    ul.test = trip::TestType::UplinkBulk;
    const auto dls = analysis::tput_samples(log.kpi, dl);
    const auto uls = analysis::tput_samples(log.kpi, ul);
    const auto rtts = analysis::rtt_samples(log.rtt, {});
    double below5 = 0;
    for (double v : dls) {
      if (v < 5.0) ++below5;
    }
    perf.add_row_values(
        std::string(to_string(log.op)),
        {percentile(dls, 50), percentile(dls, 75), percentile(uls, 50),
         percentile(uls, 75), percentile(rtts, 50),
         dls.empty() ? 0.0
                     : 100.0 * below5 / static_cast<double>(dls.size())},
        1);
  }
  std::cout << "Technology coverage (% of miles, active tests):\n";
  cov.print(std::cout);
  std::cout << "\nDriving network performance (Mbps / ms):\n";
  perf.print(std::cout);
  return 0;
}
