// App QoE showdown: run the four "5G killer" apps over a segment of the
// drive for every operator and print a side-by-side QoE scoreboard --
// driving vs the best-static baseline.
//
//   ./build/examples/app_qoe_showdown [stride]
#include <cstdlib>
#include <iostream>

#include "apps/app_campaign.h"
#include "dataset/provider.h"
#include "core/stats.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  using apps::AppKind;

  apps::AppCampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = argc > 1 ? std::max(1, std::atoi(argv[1])) : 12;

  std::cout << "Running AR / CAV / 360-video / cloud-gaming round-robin "
               "along the drive (stride "
            << cfg.cycle_stride << ")...\n\n";
  dataset::CampaignProvider provider;
  const auto& res = provider.load_or_run_apps(cfg);

  TextTable t({"Operator", "AR E2E med (ms)", "AR mAP med",
               "CAV E2E med (ms)", "video QoE med", "video rebuf med %",
               "gaming bitrate med", "gaming drops med %"});
  for (auto op : ran::kAllOperators) {
    std::vector<double> ar_e2e, ar_map, cav_e2e, qoe, reb, br, drop;
    for (const auto& r : res.for_op(op)) {
      switch (r.app) {
        case AppKind::Ar:
          if (r.compression && r.median_e2e_ms > 0.0) {
            ar_e2e.push_back(r.median_e2e_ms);
            ar_map.push_back(r.map);
          }
          break;
        case AppKind::Cav:
          if (r.compression && r.median_e2e_ms > 0.0) {
            cav_e2e.push_back(r.median_e2e_ms);
          }
          break;
        case AppKind::Video:
          qoe.push_back(r.qoe);
          reb.push_back(100.0 * r.rebuffer_fraction);
          break;
        case AppKind::Gaming:
          br.push_back(r.gaming_bitrate_mbps);
          drop.push_back(100.0 * r.frame_drop_rate);
          break;
      }
    }
    t.add_row_values(std::string(to_string(op)),
                     {median(ar_e2e), median(ar_map), median(cav_e2e),
                      median(qoe), median(reb), median(br), median(drop)},
                     1);
  }
  std::cout << "While driving:\n";
  t.print(std::cout);

  std::cout << "\nBest static baselines (facing the best 5G site of each "
               "city):\n";
  TextTable ts({"Operator", "AR E2E", "AR mAP", "CAV E2E", "video QoE",
                "gaming bitrate"});
  for (auto op : ran::kAllOperators) {
    const auto& sb = provider.load_or_run_apps_static(cfg, op);
    double ar_best = 1e18, map_best = 0, cav_best = 1e18, qoe_best = -1e18,
           br_best = 0;
    for (const auto& r : sb) {
      if (r.app == AppKind::Ar && r.compression && r.mean_e2e_ms > 0.0) {
        ar_best = std::min(ar_best, r.mean_e2e_ms);
        map_best = std::max(map_best, r.map);
      }
      if (r.app == AppKind::Cav && r.compression && r.mean_e2e_ms > 0.0) {
        cav_best = std::min(cav_best, r.mean_e2e_ms);
      }
      if (r.app == AppKind::Video) qoe_best = std::max(qoe_best, r.qoe);
      if (r.app == AppKind::Gaming) {
        br_best = std::max(br_best, r.gaming_bitrate_mbps);
      }
    }
    ts.add_row_values(std::string(to_string(op)),
                      {ar_best, map_best, cav_best, qoe_best, br_best}, 1);
  }
  ts.print(std::cout);
  std::cout << "\nThe gap between the two tables is the paper's headline: "
               "driving QoE collapses even under 5G coverage.\n";
  return 0;
}
