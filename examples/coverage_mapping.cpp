// Coverage mapping: renders the Fig. 1-style route strip chart as ASCII --
// one row per operator and logging method, one character per 50 km of the
// route. Shows the passive-vs-active coverage artifact at a glance.
//
//   ./build/examples/coverage_mapping [stride]
//
// Legend: '.' LTE/LTE-A   'l' 5G-low   'M' 5G-mid   'W' 5G-mmWave
//         ' ' no samples  'x' no service
#include <cstdlib>
#include <iostream>

#include "analysis/coverage.h"
#include "dataset/provider.h"
#include "trip/campaign.h"
#include "trip/route.h"

namespace {

char glyph(const wheels::analysis::RouteBin& b) {
  using wheels::radio::Tech;
  if (!b.any_samples) return ' ';
  if (!b.connected) return 'x';
  switch (b.dominant) {
    case Tech::LTE:
    case Tech::LTE_A: return '.';
    case Tech::NR_LOW: return 'l';
    case Tech::NR_MID: return 'M';
    case Tech::NR_MMWAVE: return 'W';
  }
  return '?';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wheels;

  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = argc > 1 ? std::max(1, std::atoi(argv[1])) : 8;
  dataset::CampaignProvider provider;
  const auto& res = provider.load_or_run(cfg);
  const double route_km = res.route_length.kilometers();
  constexpr double kBinKm = 50.0;

  std::cout << "LA -> Boston, one character per " << kBinKm << " km.\n"
            << "Legend: '.' 4G  'l' 5G-low  'M' 5G-mid  'W' mmWave  "
               "'x' no service\n\n";

  // City mile markers.
  std::string ruler(static_cast<std::size_t>(route_km / kBinKm) + 1, '-');
  const trip::Route route = trip::Route::cross_country();
  for (const auto& c : route.cities()) {
    const auto i = static_cast<std::size_t>(
        c.route_pos.kilometers() / kBinKm);
    if (i < ruler.size()) ruler[i] = '|';
  }
  std::cout << "cities:             " << ruler << "\n";

  for (const auto& log : res.logs) {
    const auto active =
        analysis::route_coverage_map_active(log.kpi, kBinKm, route_km);
    const auto passive =
        analysis::route_coverage_map_passive(log.passive, kBinKm, route_km);
    std::string sa, sp;
    for (const auto& b : active) sa += glyph(b);
    for (const auto& b : passive) sp += glyph(b);
    printf("%-9s XCAL:     %s\n", std::string(to_string(log.op)).c_str(),
           sa.c_str());
    printf("%-9s passive:  %s\n", "", sp.c_str());
    std::cout << "          disagreement: "
              << 100.0 * analysis::coverage_disagreement(passive, active)
              << "% of bins\n\n";
  }
  std::cout << "The passive rows show the operator-policy artifact: "
               "without heavy traffic the phones sit on 4G even inside 5G "
               "coverage (AT&T passive shows no 5G at all).\n";
  return 0;
}
