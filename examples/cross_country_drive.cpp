// Cross-country drive: reproduce the study's full measurement campaign and
// dump the consolidated dataset to CSV files, the way the authors publish
// their dataset.
//
//   ./build/examples/cross_country_drive [stride] [output_dir]
//
// stride 1 is the full 8-day campaign (takes a few minutes); the default
// of 10 samples every tenth test cycle.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/dataset_stats.h"
#include "core/csv.h"
#include "core/table.h"
#include "logsync/consolidate.h"
#include "logsync/timestamp.h"
#include "dataset/provider.h"
#include "trip/campaign.h"

int main(int argc, char** argv) {
  using namespace wheels;

  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = argc > 1 ? std::max(1, std::atoi(argv[1])) : 10;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  std::cout << "Driving Los Angeles -> Boston (stride " << cfg.cycle_stride
            << ")...\n";
  dataset::CampaignProvider provider;
  const auto& res = provider.load_or_run(cfg);
  const auto st = analysis::dataset_stats(res);

  TextTable t({"Statistic", "Value"});
  t.add_row({"distance (km)", fmt(st.total_km, 0)});
  t.add_row({"days", std::to_string(st.days)});
  t.add_row({"cells V/T/A", std::to_string(st.unique_cells[0]) + "/" +
                                std::to_string(st.unique_cells[1]) + "/" +
                                std::to_string(st.unique_cells[2])});
  t.add_row({"handovers V/T/A", std::to_string(st.handovers[0]) + "/" +
                                    std::to_string(st.handovers[1]) + "/" +
                                    std::to_string(st.handovers[2])});
  t.add_row({"data Rx/Tx (GB)",
             fmt(st.rx_gb, 1) + " / " + fmt(st.tx_gb, 1)});
  t.print(std::cout);

  // Export the per-operator KPI logs as CSV (UTC timestamps, the format
  // the consolidated database would use).
  for (const auto& log : res.logs) {
    const std::string path = out_dir + "/kpi_" +
                             std::string(to_string(log.op)) + ".csv";
    std::ofstream os(path);
    CsvWriter w(os);
    w.write_row({"utc_time", "test", "test_id", "pos_km", "speed_mph",
                 "timezone", "tech", "rsrp_dbm", "mcs", "bler", "num_cc",
                 "tput_mbps", "handovers", "server"});
    const logsync::LogClock clock{logsync::ClockKind::Utc, {}};
    for (const auto& s : log.kpi) {
      w.write_row({logsync::format_timestamp(s.time, clock),
                   std::string(to_string(s.test)),
                   std::to_string(s.test_id),
                   fmt(s.position.kilometers(), 3), fmt(s.speed.value, 1),
                   std::string(to_string(s.tz)),
                   s.connected ? std::string(to_string(s.tech)) : "none",
                   fmt(s.rsrp_dbm, 1), fmt(s.mcs, 1), fmt(s.bler, 3),
                   fmt(s.num_cc, 1), fmt(s.tput_mbps, 3),
                   std::to_string(s.handovers),
                   std::string(to_string(s.server))});
    }
    std::cout << "wrote " << log.kpi.size() << " KPI samples to " << path
              << "\n";
  }

  // Build the consolidated database the way the study's post-processing
  // did: every stream stamped with its own clock, merged on absolute time.
  std::cout << "\nConsolidating Verizon logs (XCAL windows in EDT, RTT "
               "echoes in UTC, passive logger in phone-local time)...\n";
  const auto& vlog = res.for_op(ran::OperatorId::Verizon);
  logsync::ConsolidatedDb db;
  const logsync::LogClock edt{logsync::ClockKind::FixedEdt, {}};
  const logsync::LogClock utc{logsync::ClockKind::Utc, {}};
  auto stamps = [](const auto& records, const logsync::LogClock& clock) {
    std::vector<std::string> out;
    out.reserve(records.size());
    for (const auto& r : records) {
      out.push_back(logsync::format_timestamp(r.time, clock));
    }
    return out;
  };
  db.add_stream(logsync::RecordSource::Xcal, stamps(vlog.kpi, edt), edt);
  const auto rtt_stream = db.add_stream(logsync::RecordSource::Rtt,
                                        stamps(vlog.rtt, utc), utc);
  const auto passive_stream = db.add_stream(
      logsync::RecordSource::Passive, stamps(vlog.passive, utc), utc);
  db.finalize();
  // RTT echoes run while the XCAL phone is between bulk tests, so the
  // natural join partner is the always-on passive logger (1 Hz).
  const auto join =
      db.join_nearest(rtt_stream, passive_stream, Millis{600.0});
  std::size_t matched = 0;
  for (long j : join) {
    if (j >= 0) ++matched;
  }
  std::cout << "consolidated " << db.records().size() << " records ("
            << db.dropped_records() << " dropped); " << matched << "/"
            << join.size()
            << " RTT echoes joined to a passive-logger record within "
               "600 ms.\n";
  return 0;
}
